//! A scoped work-stealing thread pool on `std::thread`.
//!
//! The shape follows the standard inference-runtime recipe (e.g. rten's thread pool):
//! every worker owns an injector queue and a piece of scratch state; when its queue
//! drains it steals from its peers, so a straggler task never idles the rest of the
//! pool. Three properties matter for the campaign driver built on top:
//!
//! * **Scoped borrows** — tasks run inside [`std::thread::scope`], so they may borrow
//!   the caller's stack (the compiled plan, the golden outputs, the judge) without any
//!   `Arc` or `'static` gymnastics. The pool joins all workers before returning.
//! * **Worker-local scratch** — [`ThreadPool::run_with`] gives every worker one value of
//!   caller-defined scratch state for its whole tenure (the campaign driver passes a
//!   cloned `ExecPlan` buffer arena, keeping the hot path allocation-free per worker).
//! * **Deterministic reduction** — results are returned **in task order**, whatever
//!   interleaving the scheduler produced; a panicking task propagates its panic to the
//!   caller when the scope joins.
//!
//! The queues are `Mutex<VecDeque>`s, not lock-free Chase–Lev deques: campaign tasks are
//! whole forward passes (tens of microseconds to milliseconds), so queue operations are
//! nowhere near the contention regime where lock-free stealing pays for its complexity.
//!
//! When metrics are enabled (`ranger_obs`), every worker tallies its executed tasks,
//! steals and park time (time spent in the steal-scan/idle path rather than running a
//! task — these workers retire instead of sleeping, so that is the whole of their
//! non-working time) into locals, flushed to `pool.worker.<i>.{tasks,steals,park_nanos}`
//! counters once at retirement. The task loop itself touches no shared metric state.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// A fixed-width scoped thread pool with per-worker injector queues and work stealing.
///
/// The pool is a value, not a set of running threads: each [`ThreadPool::run`] /
/// [`ThreadPool::run_with`] call spawns its workers inside a [`std::thread::scope`] and
/// joins them before returning. That keeps the API free of lifetime bounds (tasks may
/// borrow locals) and means an idle pool costs nothing.
///
/// # Example
///
/// ```
/// use ranger_runtime::ThreadPool;
///
/// let data = vec![1u64, 2, 3, 4, 5];
/// let pool = ThreadPool::new(4);
/// // Tasks borrow `data` from the caller's stack and results come back in task order.
/// let squares = pool.run(data.iter().map(|&v| move |_: &mut ()| v * v));
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// assert_eq!(data.len(), 5); // the pool joined before returning; `data` is still live
/// ```
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — a pool with no workers can never complete a task
    /// (callers wanting "serial" should pass 1, which runs tasks inline without spawning).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a thread pool needs at least one worker");
        ThreadPool { workers }
    }

    /// The number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task and returns their results in task order.
    ///
    /// Tasks receive a `&mut ()` scratch argument so the same closure shape works with
    /// [`ThreadPool::run_with`]; use that method when workers need real scratch state.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is propagated to the caller once all workers have
    /// stopped (remaining queued tasks may or may not have run).
    pub fn run<T, F, I>(&self, tasks: I) -> Vec<T>
    where
        T: Send,
        F: FnOnce(&mut ()) -> T + Send,
        I: IntoIterator<Item = F>,
    {
        self.run_with(|_| (), tasks)
    }

    /// Runs every task, giving each worker one scratch value built by `init(worker_index)`,
    /// and returns the results in task order.
    ///
    /// `init` runs on the worker's own thread, once per worker that actually starts (a
    /// pool wider than the task list skips the surplus workers' scratch). The scratch
    /// value never crosses threads, so it needs no `Send` bound — this is where a
    /// campaign worker keeps its own buffer arena.
    ///
    /// Tasks are distributed round-robin across the workers' queues; a worker that
    /// drains its own queue steals from the back of the most loaded peer's queue, so
    /// completion order is arbitrary — but the returned `Vec` is always in task order.
    ///
    /// # Panics
    ///
    /// Propagates the first observed task (or `init`) panic to the caller after all
    /// workers have stopped.
    pub fn run_with<S, T, F, I, N>(&self, init: N, tasks: I) -> Vec<T>
    where
        T: Send,
        F: FnOnce(&mut S) -> T + Send,
        I: IntoIterator<Item = F>,
        N: Fn(usize) -> S + Sync,
    {
        let tasks: Vec<F> = tasks.into_iter().collect();
        let task_count = tasks.len();
        if task_count == 0 {
            return Vec::new();
        }
        if self.workers == 1 {
            // Inline fast path: no threads, same semantics (including scratch reuse).
            let mut stats = WorkerStats::new();
            stats.tasks = task_count as u64;
            let mut scratch = init(0);
            let results = tasks.into_iter().map(|task| task(&mut scratch)).collect();
            stats.flush(0);
            return results;
        }

        // One injector queue per worker, filled round-robin so the initial split is
        // balanced without any coordination.
        let workers = self.workers.min(task_count);
        observe_run(workers);
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (index, task) in tasks.into_iter().enumerate() {
            queues[index % workers]
                .lock()
                .expect("queue lock poisoned during distribution")
                .push_back((index, task));
        }

        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(task_count));
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queues = &queues;
                let results = &results;
                let init = &init;
                scope.spawn(move || {
                    let mut scratch = init(worker);
                    let mut stats = WorkerStats::new();
                    // Completed (index, result) pairs stay worker-local until the worker
                    // retires, so the shared results mutex is touched once per worker.
                    let mut completed: Vec<(usize, T)> = Vec::new();
                    while let Some((index, task)) = next_task(queues, worker, &mut stats) {
                        completed.push((index, task(&mut scratch)));
                    }
                    stats.flush(worker);
                    results
                        .lock()
                        .expect("result lock poisoned by a panicking worker")
                        .extend(completed);
                });
            }
            // `scope` joins every worker here and re-raises the first panic, if any.
        });

        let mut completed = results
            .into_inner()
            .expect("result lock poisoned by a panicking worker");
        completed.sort_unstable_by_key(|&(index, _)| index);
        debug_assert_eq!(completed.len(), task_count);
        completed.into_iter().map(|(_, result)| result).collect()
    }

    /// Runs every task like [`ThreadPool::run_with`], but delivers each `(index, result)`
    /// pair to `consume` **as it completes**, on the calling thread, instead of
    /// collecting results into a `Vec`.
    ///
    /// This is the streaming entry point the campaign service drives: workers push
    /// completed chunk tallies through a channel while the caller — which owns the
    /// checkpoint file and the client event stream — consumes them incrementally, so a
    /// million-trial campaign reports progress long before it finishes. Completion order
    /// is arbitrary (that's the point of stealing); consumers wanting ordered emission
    /// reorder on `index`.
    ///
    /// With one worker, tasks run inline and `consume` is called after each task in task
    /// order — same semantics, no threads. `consume` is `FnMut` on the caller's thread,
    /// so it may freely mutate caller state (append to a file, update a tally) without
    /// locks. The pool still joins all workers before returning.
    ///
    /// # Panics
    ///
    /// Propagates the first observed task (or `init`) panic after all workers have
    /// stopped. If `consume` panics, remaining results are dropped and the panic
    /// surfaces once the workers retire.
    pub fn run_with_consumer<S, T, F, I, N, C>(&self, init: N, tasks: I, mut consume: C)
    where
        T: Send,
        F: FnOnce(&mut S) -> T + Send,
        I: IntoIterator<Item = F>,
        N: Fn(usize) -> S + Sync,
        C: FnMut(usize, T),
    {
        let tasks: Vec<F> = tasks.into_iter().collect();
        let task_count = tasks.len();
        if task_count == 0 {
            return;
        }
        if self.workers == 1 {
            // Inline fast path: no threads, strictly task-ordered delivery.
            let mut stats = WorkerStats::new();
            stats.tasks = task_count as u64;
            let mut scratch = init(0);
            for (index, task) in tasks.into_iter().enumerate() {
                consume(index, task(&mut scratch));
            }
            stats.flush(0);
            return;
        }

        let workers = self.workers.min(task_count);
        observe_run(workers);
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (index, task) in tasks.into_iter().enumerate() {
            queues[index % workers]
                .lock()
                .expect("queue lock poisoned during distribution")
                .push_back((index, task));
        }

        let (sender, receiver) = std::sync::mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queues = &queues;
                let init = &init;
                let sender = sender.clone();
                scope.spawn(move || {
                    let mut scratch = init(worker);
                    let mut stats = WorkerStats::new();
                    while let Some((index, task)) = next_task(queues, worker, &mut stats) {
                        // A send only fails when the consumer was dropped early (a
                        // panicking `consume`); finishing the remaining tasks silently
                        // is then the most useful behavior — the panic is already on
                        // its way to the caller.
                        let _ = sender.send((index, task(&mut scratch)));
                    }
                    stats.flush(worker);
                });
            }
            // Drop the caller's clone so the receiver disconnects once all workers
            // retire; until then, deliver results as they arrive.
            drop(sender);
            for (index, result) in receiver {
                consume(index, result);
            }
            // `scope` joins every worker here and re-raises the first panic, if any.
        });
    }
}

/// Worker-local observability tallies, flushed to the global registry once at worker
/// retirement.
///
/// The enable flag is sampled when the worker starts, so the task loop costs nothing
/// when metrics are off and never takes a registry lock either way. Flushing adds the
/// tallies to `pool.worker.<i>.{tasks,steals,park_nanos}` counters — cumulative across
/// pool runs, keyed by the worker's slot in its run.
struct WorkerStats {
    enabled: bool,
    /// Tasks this worker executed (own-queue pops plus steals).
    tasks: u64,
    /// Tasks obtained from a peer's queue.
    steals: u64,
    /// Nanoseconds spent off the own-queue fast path: steal scans plus the final
    /// empty scan before retirement. These workers retire rather than sleep, so this
    /// is the whole of their non-working time.
    park_nanos: u64,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            enabled: ranger_obs::enabled(),
            tasks: 0,
            steals: 0,
            park_nanos: 0,
        }
    }

    fn flush(&self, worker: usize) {
        if !self.enabled {
            return;
        }
        let registry = ranger_obs::registry();
        registry
            .counter(&format!("pool.worker.{worker}.tasks"))
            .add(self.tasks);
        registry
            .counter(&format!("pool.worker.{worker}.steals"))
            .add(self.steals);
        registry
            .counter(&format!("pool.worker.{worker}.park_nanos"))
            .add(self.park_nanos);
    }
}

/// Records the width of a parallel pool run in the `pool.workers` gauge.
fn observe_run(workers: usize) {
    if ranger_obs::enabled() {
        ranger_obs::registry()
            .gauge("pool.workers")
            .set(workers as i64);
    }
}

/// Pops the next task for `worker`: the front of its own queue, else the back entry of
/// the most loaded peer (steal-from-richest keeps the remaining work spread out; owners
/// take the front, thieves the back, so they contend on a queue's ends only when it is
/// nearly empty). No new tasks are ever injected after distribution, so the worker can
/// retire once a full scan observes every queue empty; a victim drained between the
/// scan and the steal just triggers a re-scan.
///
/// Tallies every pop into `stats`; time spent past the own-queue fast path counts as
/// park time. Pure observation — scheduling decisions never read the tallies.
fn next_task<F>(
    queues: &[Mutex<VecDeque<(usize, F)>>],
    worker: usize,
    stats: &mut WorkerStats,
) -> Option<(usize, F)> {
    if let Some(task) = queues[worker]
        .lock()
        .expect("queue lock poisoned by a panicking worker")
        .pop_front()
    {
        stats.tasks += 1;
        return Some(task);
    }
    let idle_start = if stats.enabled {
        Some(Instant::now())
    } else {
        None
    };
    let stolen = loop {
        // Steal: scan peers for the longest queue. Each retry only happens after an
        // observed-non-empty queue turned empty, and queues never refill, so the loop
        // terminates.
        let Some((victim, observed)) = queues
            .iter()
            .enumerate()
            .filter(|&(peer, _)| peer != worker)
            .map(|(peer, queue)| (peer, queue.lock().map(|q| q.len()).unwrap_or(0)))
            .max_by_key(|&(_, len)| len)
        else {
            break None;
        };
        if observed == 0 {
            break None;
        }
        if let Some(task) = queues[victim]
            .lock()
            .expect("queue lock poisoned by a panicking worker")
            .pop_back()
        {
            break Some(task);
        }
    };
    if let Some(start) = idle_start {
        stats.park_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    if stolen.is_some() {
        stats.tasks += 1;
        stats.steals += 1;
    }
    stolen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ThreadPool::new(4);
        let results = pool.run((0..100usize).map(|i| {
            move |_: &mut ()| {
                // Stagger completion so late tasks finish before early ones.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                i * 3
            }
        }));
        assert_eq!(results, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_the_callers_stack() {
        let data: Vec<u64> = (0..64).collect();
        let pool = ThreadPool::new(3);
        let doubled = pool.run(data.iter().map(|&v| move |_: &mut ()| v * 2));
        assert_eq!(doubled.len(), data.len());
        assert!(doubled.iter().zip(&data).all(|(d, &v)| *d == v * 2));
        // `data` is still usable: the pool joined before returning.
        assert_eq!(data.len(), 64);
    }

    #[test]
    fn worker_scratch_is_initialized_once_per_worker_and_reused() {
        let inits = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        let counts = pool.run_with(
            |_worker| {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize // per-worker task counter
            },
            (0..200).map(|_| {
                |scratch: &mut usize| {
                    *scratch += 1;
                    *scratch
                }
            }),
        );
        // Scratch is reused across a worker's tasks: some task must have seen a counter
        // above 200 / workers if reuse works at all; with fresh scratch per task every
        // result would be 1.
        assert!(counts.iter().any(|&c| c > 1), "scratch was not reused");
        let inits = inits.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&inits),
            "expected one init per started worker, saw {inits}"
        );
    }

    #[test]
    fn a_panicking_task_propagates_to_the_caller() {
        let pool = ThreadPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..16).map(|i| {
                move |_: &mut ()| {
                    if i == 7 {
                        panic!("task 7 exploded");
                    }
                    i
                }
            }))
        }));
        assert!(outcome.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn single_worker_pool_runs_inline_and_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        let results = pool.run((0..10usize).map(|i| {
            let order = &order;
            move |_: &mut ()| {
                order.lock().unwrap().push(i);
                i
            }
        }));
        assert_eq!(results, (0..10).collect::<Vec<_>>());
        // Inline execution is strictly sequential.
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let pool = ThreadPool::new(8);
        let results: Vec<u32> = pool.run(Vec::<fn(&mut ()) -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn more_workers_than_tasks_still_completes() {
        let pool = ThreadPool::new(8);
        assert_eq!(
            pool.run((0..3usize).map(|i| move |_: &mut ()| i)),
            vec![0, 1, 2]
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        ThreadPool::new(0);
    }

    #[test]
    fn consumer_receives_every_result_exactly_once() {
        let pool = ThreadPool::new(4);
        let mut seen = [false; 100];
        pool.run_with_consumer(
            |_| (),
            (0..100usize).map(|i| move |_: &mut ()| i * 3),
            |index, result| {
                assert_eq!(result, index * 3);
                assert!(!seen[index], "result {index} delivered twice");
                seen[index] = true;
            },
        );
        assert!(seen.iter().all(|&s| s), "some results never arrived");
    }

    #[test]
    fn consumer_runs_on_the_calling_thread_and_may_mutate_caller_state() {
        let caller = std::thread::current().id();
        let pool = ThreadPool::new(3);
        let mut total = 0u64;
        pool.run_with_consumer(
            |_| (),
            (1..=50u64).map(|i| move |_: &mut ()| i),
            |_, value| {
                assert_eq!(std::thread::current().id(), caller);
                total += value; // no lock: `consume` is exclusive to the caller
            },
        );
        assert_eq!(total, 50 * 51 / 2);
    }

    #[test]
    fn consumer_observes_results_before_all_tasks_finish() {
        // One task blocks until the consumer has seen another task's result — only
        // possible if delivery is incremental, not join-then-deliver.
        use std::sync::atomic::AtomicBool;
        let unblocked = AtomicBool::new(false);
        let pool = ThreadPool::new(2);
        let mut order = Vec::new();
        pool.run_with_consumer(
            |_| (),
            vec![
                Box::new(|_: &mut ()| {
                    while !unblocked.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    0usize
                }) as Box<dyn FnOnce(&mut ()) -> usize + Send>,
                Box::new(|_: &mut ()| 1usize),
            ],
            |index, _| {
                if index == 1 {
                    unblocked.store(true, Ordering::SeqCst);
                }
                order.push(index);
            },
        );
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1, "the blocked task's result cannot arrive first");
    }

    #[test]
    fn single_worker_consumer_is_inline_and_task_ordered() {
        let pool = ThreadPool::new(1);
        let mut order = Vec::new();
        pool.run_with_consumer(
            |_| (),
            (0..10usize).map(|i| move |_: &mut ()| i),
            |index, result| {
                assert_eq!(index, result);
                order.push(index);
            },
        );
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn consumer_with_empty_task_list_is_a_no_op() {
        let pool = ThreadPool::new(4);
        pool.run_with_consumer(
            |_| (),
            Vec::<fn(&mut ()) -> u32>::new(),
            |_, _| panic!("no results expected"),
        );
    }

    /// One test (not several) because it toggles the process-global enable flag;
    /// delta-based and `>=` assertions throughout because the counters are shared.
    #[test]
    fn workers_flush_task_steal_and_park_tallies_when_metrics_are_enabled() {
        let registry = ranger_obs::registry();
        let was_enabled = ranger_obs::enabled();

        // While disabled (the default), pool runs leave no counters behind.
        if !was_enabled {
            let before = registry.counter("pool.worker.0.tasks").value();
            ThreadPool::new(2).run((0..8usize).map(|i| move |_: &mut ()| i));
            assert_eq!(registry.counter("pool.worker.0.tasks").value(), before);
        }

        let tasks_before: u64 = (0..4)
            .map(|w| registry.counter(&format!("pool.worker.{w}.tasks")).value())
            .sum();
        ranger_obs::set_enabled(true);

        // Uneven task durations force at least some cross-queue traffic in practice,
        // but only the task total is deterministic — steals/park are observed, not
        // asserted beyond existence.
        let pool = ThreadPool::new(4);
        let results = pool.run((0..97usize).map(|i| {
            move |_: &mut ()| {
                if i % 5 == 0 {
                    std::thread::yield_now();
                }
                i
            }
        }));
        assert_eq!(results.len(), 97);

        let tasks_after: u64 = (0..4)
            .map(|w| registry.counter(&format!("pool.worker.{w}.tasks")).value())
            .sum();
        assert!(
            tasks_after - tasks_before >= 97,
            "expected ≥97 new tasks recorded, saw {}",
            tasks_after - tasks_before
        );
        // The steal/park counters exist for every worker slot that ran.
        let snapshot = registry.snapshot();
        assert!(snapshot.counter("pool.worker.0.steals").is_some());
        assert!(snapshot.counter("pool.worker.0.park_nanos").is_some());
        assert_eq!(snapshot.gauge("pool.workers"), Some(4));

        // The single-worker inline path tallies into slot 0, too.
        let inline_before = registry.counter("pool.worker.0.tasks").value();
        ThreadPool::new(1).run((0..13usize).map(|i| move |_: &mut ()| i));
        assert!(registry.counter("pool.worker.0.tasks").value() - inline_before >= 13);

        ranger_obs::set_enabled(was_enabled);
    }

    #[test]
    fn a_panicking_task_still_reaches_the_consumer_caller() {
        let pool = ThreadPool::new(2);
        let delivered = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_with_consumer(
                |_| (),
                (0..16).map(|i| {
                    move |_: &mut ()| {
                        if i == 7 {
                            panic!("task 7 exploded");
                        }
                        i
                    }
                }),
                |_, _| {
                    delivered.fetch_add(1, Ordering::SeqCst);
                },
            )
        }));
        assert!(outcome.is_err(), "worker panic must reach the caller");
        assert!(delivered.load(Ordering::SeqCst) <= 15);
    }
}
