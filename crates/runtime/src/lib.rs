//! Deterministic parallel execution runtime for the Ranger reproduction.
//!
//! Fault-injection campaigns are embarrassingly parallel — `inputs × trials` independent
//! forward passes of the same graph — but the build environment has no crates.io access,
//! so this crate provides the two pieces a parallel campaign driver needs without any
//! external dependency:
//!
//! * [`pool`] — a **scoped work-stealing thread pool** on `std::thread`: each worker owns
//!   an injector queue and steals from its peers when it drains, tasks may borrow from the
//!   caller's stack (the pool joins before returning), each worker carries its own scratch
//!   state (a cloned buffer arena, in the campaign driver's case), and results come back
//!   in task order whatever the interleaving was.
//! * [`rng`] — the **per-(input, trial) RNG stream derivation**: SplitMix64-mixed
//!   sub-seeds so every trial draws its fault plan from an independent, index-keyed
//!   stream. Serial, batched and parallel drivers that key their draws this way produce
//!   bit-for-bit identical plans for any worker count and any batch size.
//!
//! The two halves compose into the determinism model documented in `ARCHITECTURE.md`:
//! *schedule-free randomness* (streams keyed by logical indices, never by execution
//! order) plus *order-restoring reduction* (results merged by task index).

#![warn(missing_docs)]

pub mod pool;
pub mod rng;

pub use pool::ThreadPool;
pub use rng::{splitmix64_mix, trial_stream_seed};

/// The default worker count for campaign configurations: the `RANGER_WORKERS`
/// environment variable if it is set to a positive integer, otherwise `1` (the serial
/// path).
///
/// Reading the environment here — once, at configuration-default time, never inside the
/// drivers — lets a CI job exercise the parallel path across an entire test suite
/// (`RANGER_WORKERS=4 cargo test`) without every call site growing a knob. Because
/// campaign results are bit-for-bit identical for every worker count, overriding the
/// default can never change what a test asserts, only which executor runs it.
pub fn default_workers() -> usize {
    std::env::var("RANGER_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workers_is_at_least_one() {
        // Whatever the environment says, the default is usable as a worker count.
        assert!(default_workers() >= 1);
    }
}
