//! The chunked campaign driver: checkpointed, streaming execution of a
//! [`PreparedCampaign`].
//!
//! [`drive`] is the heart of the service. It takes a campaign already compiled into
//! work units, a [`CheckpointStore`] keyed by the campaign's fingerprint, a worker pool
//! and a [`CampaignSink`], and executes every chunk not yet on record:
//!
//! * **Pending chunks** run on the pool via
//!   [`ThreadPool::run_with_consumer`], one buffer arena
//!   per worker; each completed tally is appended to the checkpoint — fsync'd — *before*
//!   it is reported, so every chunk event a client observes is durable.
//! * **Resumed chunks** are replayed from the store (after verifying their geometry
//!   against the prepared partition) without running a single forward pass.
//! * **Emission** is reordered to canonical chunk-index order whatever the completion
//!   order was, so the cumulative tallies the sink observes are deterministic and
//!   monotone — a resumed stream is indistinguishable from an uninterrupted one.
//!
//! Because fault plans are keyed by `(input, trial)` index, the final result is
//! bit-for-bit the [`run_campaign`](ranger_inject::run_campaign) result for the same
//! configuration, however many times the campaign was killed and resumed in between.

use crate::checkpoint::{CheckpointStore, ChunkRecord};
use crate::sink::{CampaignEvent, CampaignSink, SinkFlow};
use crate::ServeError;
use ranger_inject::{CampaignError, CampaignResult, ChunkTally, PreparedCampaign, TrialChunk};
use ranger_runtime::ThreadPool;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// How a driven campaign ended.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveOutcome {
    /// Every chunk is accounted for; the result equals the in-process API's.
    Completed(CampaignResult),
    /// The campaign was stopped — by the sink or the cancel flag — after a prefix of
    /// chunks. The partial result covers every chunk emitted before the stop; all
    /// completed chunks (emitted or not) are durable in the checkpoint.
    Stopped(CampaignResult),
}

/// Drives a prepared campaign to completion (or cancellation), streaming ordered tally
/// events into `sink` and persisting every completed chunk into `store`.
///
/// `cancel` is checked before each pending chunk executes and may be set at any time by
/// another thread (the service's cancel request); the sink returning [`SinkFlow::Stop`]
/// sets it too. Stopping is cooperative: in-flight chunks finish and are checkpointed,
/// further chunks are skipped.
///
/// # Errors
///
/// Returns [`ServeError::Corrupt`] if a checkpoint record's geometry does not match the
/// prepared partition (the fingerprint should make this unreachable short of file
/// tampering), or [`ServeError::Campaign`] if work units fail — with
/// [`CampaignError::Failures`] context when more than one did.
pub fn drive(
    prepared: &PreparedCampaign<'_>,
    store: &mut CheckpointStore,
    pool: &ThreadPool,
    cancel: &AtomicBool,
    sink: &mut dyn CampaignSink,
) -> Result<DriveOutcome, ServeError> {
    let chunks = prepared.chunks();
    // Trust no record until it passes the same merge-verify pass the sharding
    // coordinator applies to remote records: geometry and tally shape must match the
    // canonical partition exactly.
    for record in store.completed().values() {
        record.verify_against(chunks, prepared.categories().len())?;
    }

    let trials_total = (prepared.config().trials * prepared.num_inputs()) as u64;
    let golden = CampaignEvent::GoldenDone {
        total_chunks: chunks.len(),
        resumed_chunks: store.len(),
        trials_total,
        categories: prepared.categories().to_vec(),
    };
    if sink.event(&golden) == SinkFlow::Stop {
        cancel.store(true, Ordering::SeqCst);
        return Ok(DriveOutcome::Stopped(prepared.empty_result()));
    }

    // Emission state: tallies parked until their index is next, replayed records first.
    let mut ready: BTreeMap<usize, (ChunkTally, bool)> = store
        .completed()
        .values()
        .map(|record| (record.chunk.index, (record.tally.clone(), true)))
        .collect();
    let mut cumulative = prepared.empty_result();
    let mut next_emit = 0usize;
    let mut stopped = false;

    // Drains every in-order tally into the cumulative result and the sink. Kept as a
    // closure-free helper so the pool consumer below can call it without aliasing.
    fn emit_ready(
        ready: &mut BTreeMap<usize, (ChunkTally, bool)>,
        next_emit: &mut usize,
        cumulative: &mut CampaignResult,
        chunks: &[TrialChunk],
        sink: &mut dyn CampaignSink,
        cancel: &AtomicBool,
        stopped: &mut bool,
    ) {
        while !*stopped {
            let Some((tally, resumed)) = ready.remove(next_emit) else {
                break;
            };
            cumulative.absorb(&tally);
            let event = CampaignEvent::ChunkDone {
                chunk: chunks[*next_emit],
                tally,
                resumed,
                cumulative: cumulative.clone(),
            };
            *next_emit += 1;
            if sink.event(&event) == SinkFlow::Stop {
                cancel.store(true, Ordering::SeqCst);
                *stopped = true;
            }
        }
    }

    emit_ready(
        &mut ready,
        &mut next_emit,
        &mut cumulative,
        chunks,
        sink,
        cancel,
        &mut stopped,
    );

    // Everything not on record runs on the pool; completion order is arbitrary.
    let pending: Vec<TrialChunk> = chunks
        .iter()
        .filter(|chunk| !store.completed().contains_key(&chunk.index))
        .copied()
        .collect();
    // The first failure in chunk-index order, plus how many more failed behind it.
    let mut first_failure: Option<(usize, CampaignError)> = None;
    let mut failures = 0usize;
    let mut append_failure: Option<ServeError> = None;
    {
        let pending = &pending;
        let store = &mut *store;
        let ready = &mut ready;
        let next_emit = &mut next_emit;
        let cumulative = &mut cumulative;
        let stopped = &mut stopped;
        let first_failure = &mut first_failure;
        let failures = &mut failures;
        let append_failure = &mut append_failure;
        pool.run_with_consumer(
            |_worker| prepared.buffers(),
            pending.iter().map(|&chunk| {
                move |values: &mut ranger_graph::exec::Values| {
                    if cancel.load(Ordering::SeqCst) {
                        return Ok(None); // cooperative cancellation: skip, don't run
                    }
                    prepared.run_chunk(values, chunk).map(Some)
                }
            }),
            |task_index, result: Result<Option<ChunkTally>, CampaignError>| {
                let chunk = pending[task_index];
                match result {
                    Ok(None) => {} // skipped after cancellation
                    Ok(Some(tally)) => {
                        // Durability before visibility: fsync the record, then emit.
                        let record = ChunkRecord { chunk, tally };
                        if let Err(e) = store.append(&record) {
                            if append_failure.is_none() {
                                *append_failure = Some(e);
                            }
                            cancel.store(true, Ordering::SeqCst);
                            return;
                        }
                        ready.insert(chunk.index, (record.tally, false));
                        emit_ready(ready, next_emit, cumulative, chunks, sink, cancel, stopped);
                    }
                    Err(error) => {
                        *failures += 1;
                        let earlier = first_failure
                            .as_ref()
                            .is_some_and(|&(index, _)| index < chunk.index);
                        if !earlier {
                            *first_failure = Some((chunk.index, error));
                        }
                        // A failing campaign cannot complete; stop scheduling work.
                        cancel.store(true, Ordering::SeqCst);
                    }
                }
            },
        );
    }

    // Fold whatever plan timings accumulated into the registry, whatever the outcome:
    // a stopped or failed drive still spent wall time worth accounting for.
    prepared.publish_metrics();

    if let Some(e) = append_failure {
        return Err(e);
    }
    if let Some((index, first)) = first_failure {
        let unit = chunks[index];
        return Err(ServeError::Campaign(if failures > 1 {
            CampaignError::Failures {
                first: Box::new(first),
                input: unit.input,
                chunk: unit.index,
                suppressed: failures - 1,
            }
        } else {
            first
        }));
    }
    if cancel.load(Ordering::SeqCst) || stopped {
        return Ok(DriveOutcome::Stopped(cumulative));
    }

    debug_assert_eq!(next_emit, chunks.len(), "all chunks must have been emitted");
    debug_assert_eq!(cumulative.trials, trials_total);
    sink.event(&CampaignEvent::CampaignDone {
        result: cumulative.clone(),
    });
    Ok(DriveOutcome::Completed(cumulative))
}
