//! The incremental event stream a driven campaign emits.
//!
//! The driver pushes three kinds of events through a [`CampaignSink`], always in
//! canonical chunk order: one [`CampaignEvent::GoldenDone`] once preparation (golden
//! passes, injection spaces, checkpoint replay) finishes, one
//! [`CampaignEvent::ChunkDone`] per work unit — resumed units included, so a client
//! watching a restarted campaign sees the full tally history — and one
//! [`CampaignEvent::CampaignDone`] carrying the final result. Cumulative tallies are
//! absorbed in emission order, which makes every field of the running
//! [`CampaignResult`] monotonically non-decreasing across the stream.

use ranger_inject::{CampaignResult, ChunkTally, TrialChunk};
use serde::{Deserialize, Serialize};

/// One incremental event of a driven campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// Preparation finished: the golden passes ran, the partition is fixed and any
    /// checkpointed prefix has been recovered. Always the first event.
    GoldenDone {
        /// Total number of work units in the campaign's canonical partition.
        total_chunks: usize,
        /// How many of them were recovered from the checkpoint instead of re-run.
        resumed_chunks: usize,
        /// Total trials the campaign will tally (`trials × inputs`).
        trials_total: u64,
        /// The judge categories, in reporting order.
        categories: Vec<String>,
    },
    /// One work unit's counts are durable and folded into the running totals. Emitted in
    /// chunk-index order regardless of completion order.
    ChunkDone {
        /// The completed work unit.
        chunk: TrialChunk,
        /// The unit's own partial counts.
        tally: ChunkTally,
        /// Whether the unit was recovered from the checkpoint rather than executed.
        resumed: bool,
        /// Running totals over all units emitted so far — monotone across the stream.
        cumulative: CampaignResult,
    },
    /// Every work unit is accounted for; `result` is bit-for-bit the
    /// [`CampaignResult`] the in-process [`ranger_inject::run_campaign`] API reports for
    /// the same campaign. Always the last event of a completed campaign.
    CampaignDone {
        /// The final campaign statistics.
        result: CampaignResult,
    },
}

impl CampaignEvent {
    /// Number of trials tallied so far at this point in the stream.
    pub fn trials_done(&self) -> u64 {
        match self {
            CampaignEvent::GoldenDone { .. } => 0,
            CampaignEvent::ChunkDone { cumulative, .. } => cumulative.trials,
            CampaignEvent::CampaignDone { result } => result.trials,
        }
    }
}

/// A sink's verdict after each event: keep driving, or stop the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFlow {
    /// Keep the campaign running.
    Continue,
    /// Stop scheduling further work; chunks already durable stay in the checkpoint, so
    /// a later run resumes from here.
    Stop,
}

/// Receives a driven campaign's event stream.
///
/// The driver calls this on its own (consumer) thread, never concurrently, so
/// implementations can mutate local state freely. Returning [`SinkFlow::Stop`] is the
/// cooperative cancellation path — the service's cancel request and the kill-after-k
/// resume tests are both built on it.
pub trait CampaignSink {
    /// Handles one event and decides whether to keep going.
    fn event(&mut self, event: &CampaignEvent) -> SinkFlow;
}

/// A sink that discards events (drive for the result alone).
#[derive(Debug, Default)]
pub struct NullSink;

impl CampaignSink for NullSink {
    fn event(&mut self, _event: &CampaignEvent) -> SinkFlow {
        SinkFlow::Continue
    }
}

/// A sink that records every event, optionally stopping after a fixed number of chunk
/// events — the in-process stand-in for a killed campaign.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Every event received, in emission order.
    pub events: Vec<CampaignEvent>,
    /// If set, request a stop once this many [`CampaignEvent::ChunkDone`] events have
    /// been observed.
    pub stop_after_chunks: Option<usize>,
}

impl CollectSink {
    /// A sink that collects the whole stream.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// A sink that stops the campaign after `chunks` chunk events.
    pub fn stopping_after(chunks: usize) -> Self {
        CollectSink {
            events: Vec::new(),
            stop_after_chunks: Some(chunks),
        }
    }

    /// Number of chunk events observed so far.
    pub fn chunks_seen(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::ChunkDone { .. }))
            .count()
    }
}

impl CampaignSink for CollectSink {
    fn event(&mut self, event: &CampaignEvent) -> SinkFlow {
        self.events.push(event.clone());
        match self.stop_after_chunks {
            Some(limit) if self.chunks_seen() >= limit => SinkFlow::Stop,
            _ => SinkFlow::Continue,
        }
    }
}
