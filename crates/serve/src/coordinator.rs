//! The sharding coordinator: lease lifecycle plus merge-verify over one campaign.
//!
//! A [`Coordinator`] owns everything one sharded campaign needs on the coordinating
//! host: the canonical chunk partition, the fsync'd [`CheckpointStore`], a
//! [`LeaseTable`] handing exclusive chunk ranges to worker hosts, and the ordered
//! emission state that turns remotely-completed records into the same monotone
//! [`CampaignEvent`] stream the local driver produces. It runs **no forward passes**
//! itself — workers materialize the campaign from its spec, execute chunks, and push
//! records back; the coordinator's job is to refuse everything that shouldn't be
//! merged and durably absorb everything that should.
//!
//! Every record a worker pushes crosses three gates, in order:
//!
//! 1. **Duplicate** — a record identical to one already durable is answered
//!    idempotently (workers retry pushes whose responses were lost).
//! 2. **Lease** — the push must carry a token covering the record's chunk
//!    ([`LeaseTable::touch`]); pushing renews the lease.
//! 3. **Merge-verify** — [`ChunkRecord::verify_against`] re-checks the chunk's
//!    geometry and the tally's shape against the campaign's canonical partition, and
//!    the push must name the coordinator's exact fingerprint.
//!
//! Only then is the record fsync'd into the store — durability before visibility, the
//! same discipline as the local driver — and emitted in canonical chunk order.

use crate::checkpoint::{CheckpointStore, ChunkRecord};
use crate::lease::{LeaseError, LeaseGrant, LeaseTable, TouchOutcome};
use crate::sink::{CampaignEvent, CampaignSink, SinkFlow};
use crate::ServeError;
use ranger_inject::{CampaignResult, ChunkTally, TrialChunk};
use std::collections::BTreeMap;
use std::time::Instant;

/// Coordinates one sharded campaign: leases out chunk ranges, merge-verifies and
/// durably absorbs the records workers push back, and emits the ordered event stream.
#[derive(Debug)]
pub struct Coordinator {
    fingerprint: String,
    chunks: Vec<TrialChunk>,
    categories: Vec<String>,
    trials_total: u64,
    store: CheckpointStore,
    table: LeaseTable,
    /// Absorbed tallies parked until their index is next; `bool` is the resumed flag.
    ready: BTreeMap<usize, (ChunkTally, bool)>,
    next_emit: usize,
    cumulative: CampaignResult,
    resumed_chunks: usize,
    stopped: bool,
}

impl Coordinator {
    /// Builds a coordinator over `store` for the campaign whose canonical partition is
    /// `chunks`, judging `categories`, totalling `trials_total` trials.
    ///
    /// Records already durable in the store are merge-verified immediately (a corrupt
    /// resumed record is refused here, before any lease is granted) and replay as
    /// resumed chunks when [`Coordinator::begin`] runs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Corrupt`] if a resumed record fails merge-verify.
    pub fn new(
        store: CheckpointStore,
        chunks: Vec<TrialChunk>,
        categories: Vec<String>,
        trials_total: u64,
    ) -> Result<Self, ServeError> {
        for record in store.completed().values() {
            record.verify_against(&chunks, categories.len())?;
        }
        let table = LeaseTable::new(chunks.len(), store.completed().keys().copied());
        let ready: BTreeMap<usize, (ChunkTally, bool)> = store
            .completed()
            .values()
            .map(|record| (record.chunk.index, (record.tally.clone(), true)))
            .collect();
        let resumed_chunks = ready.len();
        let cumulative = CampaignResult {
            categories: categories.clone(),
            sdc_counts: vec![0; categories.len()],
            trials: 0,
            unactivated: 0,
        };
        Ok(Coordinator {
            fingerprint: store.fingerprint().to_string(),
            chunks,
            categories,
            trials_total,
            store,
            table,
            ready,
            next_emit: 0,
            cumulative,
            resumed_chunks,
            stopped: false,
        })
    }

    /// The campaign fingerprint this coordinator merges records for.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Chunks in the canonical partition.
    pub fn total_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks that were already durable when the coordinator opened.
    pub fn resumed_chunks(&self) -> usize {
        self.resumed_chunks
    }

    /// Whether every chunk has been absorbed and emitted.
    pub fn is_done(&self) -> bool {
        self.next_emit == self.chunks.len()
    }

    /// Whether a sink stopped the campaign (the server translates this to cancelled).
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Marks the campaign stopped: subsequent claims return no work.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// The merged counts so far (the final result once [`Coordinator::is_done`]).
    pub fn cumulative(&self) -> &CampaignResult {
        &self.cumulative
    }

    /// Emits the campaign-opening events: `GoldenDone` with the partition summary,
    /// then every resumed chunk in canonical order (and `CampaignDone` if the store
    /// already covers the whole campaign).
    pub fn begin(&mut self, sink: &mut dyn CampaignSink) {
        let golden = CampaignEvent::GoldenDone {
            total_chunks: self.chunks.len(),
            resumed_chunks: self.resumed_chunks,
            trials_total: self.trials_total,
            categories: self.categories.clone(),
        };
        if sink.event(&golden) == SinkFlow::Stop {
            self.stopped = true;
            return;
        }
        self.emit_ready(sink);
    }

    /// Claims the next free contiguous chunk range for `worker` (see
    /// [`LeaseTable::claim`]). Returns `None` when no chunk is currently free — done,
    /// stopped, or everything pending is out on live leases.
    pub fn claim(
        &mut self,
        worker: &str,
        max_chunks: usize,
        ttl_ms: u64,
        now: Instant,
    ) -> Option<LeaseGrant> {
        self.sweep(now);
        if self.stopped {
            return None;
        }
        let grant = self.table.claim(worker, max_chunks, ttl_ms, now);
        if grant.is_some() {
            observe("serve.leases.granted");
        }
        grant
    }

    /// Claims an explicit chunk range (see [`LeaseTable::claim_range`]).
    ///
    /// # Errors
    ///
    /// Propagates the table's refusals; see [`LeaseTable::claim_range`].
    pub fn claim_range(
        &mut self,
        worker: &str,
        start: usize,
        end: usize,
        ttl_ms: u64,
        now: Instant,
    ) -> Result<LeaseGrant, LeaseError> {
        self.sweep(now);
        let grant = self.table.claim_range(worker, start, end, ttl_ms, now);
        observe(if grant.is_ok() {
            "serve.leases.granted"
        } else {
            "serve.leases.denied"
        });
        grant
    }

    /// Renews a live lease (see [`LeaseTable::renew`]).
    ///
    /// # Errors
    ///
    /// Propagates the table's refusals; see [`LeaseTable::renew`].
    pub fn renew(
        &mut self,
        token: u64,
        ttl_ms: u64,
        now: Instant,
    ) -> Result<LeaseGrant, LeaseError> {
        self.sweep(now);
        let grant = self.table.renew(token, ttl_ms, now);
        observe(if grant.is_ok() {
            "serve.leases.renewed"
        } else {
            "serve.leases.denied"
        });
        grant
    }

    /// Releases a live lease (see [`LeaseTable::release`]).
    ///
    /// # Errors
    ///
    /// Propagates the table's refusals; see [`LeaseTable::release`].
    pub fn release(&mut self, token: u64, now: Instant) -> Result<(), LeaseError> {
        self.sweep(now);
        let released = self.table.release(token, now);
        observe(if released.is_ok() {
            "serve.leases.released"
        } else {
            "serve.leases.denied"
        });
        released
    }

    /// Absorbs one record pushed by a worker: duplicate-idempotent, lease-checked,
    /// merge-verified, then durably appended and emitted in canonical order.
    ///
    /// `claimed_fingerprint` is the campaign id the worker addressed; a push aimed at
    /// a different campaign than this coordinator's is refused before anything else.
    /// The lease's deadline is renewed by a successful push.
    ///
    /// # Errors
    ///
    /// [`ServeError::FingerprintMismatch`] for a push addressed to another campaign,
    /// [`ServeError::Lease`] when the token does not (or no longer does) cover the
    /// chunk, [`ServeError::Corrupt`] when merge-verify refuses the record, and
    /// I/O / JSON errors if the durable append itself fails. On any error the store is
    /// untouched.
    pub fn absorb(
        &mut self,
        claimed_fingerprint: &str,
        token: u64,
        record: ChunkRecord,
        now: Instant,
        sink: &mut dyn CampaignSink,
    ) -> Result<(), ServeError> {
        self.sweep(now);
        if claimed_fingerprint != self.fingerprint {
            observe("serve.merge.rejected");
            return Err(ServeError::FingerprintMismatch {
                expected: self.fingerprint.clone(),
                found: claimed_fingerprint.to_string(),
            });
        }
        if let Some(existing) = self.store.completed().get(&record.chunk.index) {
            // A worker retrying a push whose response was lost: the identical record
            // is already durable, so the merge is a no-op either way.
            if *existing == record {
                observe("serve.merge.duplicate");
                return Ok(());
            }
            observe("serve.merge.rejected");
            return Err(ServeError::Corrupt(format!(
                "chunk {} is already durable with a different tally — two workers \
                 disagree about the same deterministic chunk",
                record.chunk.index
            )));
        }
        match self.table.touch(token, record.chunk.index, now) {
            Ok(TouchOutcome::Live) => {}
            Ok(TouchOutcome::LateUnclaimed) => observe("serve.merge.late_accepted"),
            Err(error) => {
                observe("serve.merge.rejected");
                return Err(ServeError::Lease(error));
            }
        }
        record
            .verify_against(&self.chunks, self.categories.len())
            .inspect_err(|_| observe("serve.merge.rejected"))?;

        // Durability before visibility: fsync'd into the store, then emitted.
        self.store.append(&record)?;
        self.table.complete(record.chunk.index);
        observe("serve.merge.accepted");
        self.ready.insert(record.chunk.index, (record.tally, false));
        self.emit_ready(sink);
        Ok(())
    }

    /// Reaps expired leases, counting them under `serve.leases.expired`.
    fn sweep(&mut self, now: Instant) {
        let expired = self.table.sweep(now);
        if expired > 0 && ranger_obs::enabled() {
            ranger_obs::registry()
                .counter("serve.leases.expired")
                .add(expired as u64);
        }
    }

    /// Drains every in-order tally into the cumulative result and the sink, closing
    /// with `CampaignDone` when the last chunk emits.
    fn emit_ready(&mut self, sink: &mut dyn CampaignSink) {
        while !self.stopped {
            let Some((tally, resumed)) = self.ready.remove(&self.next_emit) else {
                break;
            };
            self.cumulative.absorb(&tally);
            let event = CampaignEvent::ChunkDone {
                chunk: self.chunks[self.next_emit],
                tally,
                resumed,
                cumulative: self.cumulative.clone(),
            };
            self.next_emit += 1;
            if sink.event(&event) == SinkFlow::Stop {
                self.stopped = true;
            }
        }
        if !self.stopped && self.is_done() {
            debug_assert_eq!(self.cumulative.trials, self.trials_total);
            sink.event(&CampaignEvent::CampaignDone {
                result: self.cumulative.clone(),
            });
        }
    }
}

/// Counts one coordinator outcome (no-op when metrics are off; never branches on any
/// observed value).
fn observe(name: &str) {
    if ranger_obs::enabled() {
        ranger_obs::registry().counter(name).increment();
    }
}
