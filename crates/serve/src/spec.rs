//! Wire-level campaign specifications and their materialization.
//!
//! A [`CampaignSpec`] is everything a *remote* client can say about a campaign: which
//! model (a benchmark name built deterministically from the seed, or a saved-model file
//! on the server's disk), how many validation inputs, and the full
//! [`CampaignConfig`]. [`CampaignSpec::materialize`] turns it into the owned model,
//! inputs and judge the driver needs — deterministically, so a client, a server and a
//! restarted server all materialize the identical campaign and therefore the identical
//! fingerprint.

use crate::fingerprint::campaign_fingerprint;
use crate::ServeError;
use ranger_datasets::driving::AngleUnit;
use ranger_inject::{
    default_chunk_len, CampaignConfig, ClassifierJudge, InjectionTarget, SdcJudge, SteeringJudge,
};
use ranger_models::zoo::ModelZoo;
use ranger_models::{archs, Model, ModelConfig, ModelKind, Task};
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Where the campaign's model comes from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A benchmark architecture built deterministically (untrained weights) from the
    /// campaign seed — reproducible across processes and machines, no files needed.
    Kind {
        /// The benchmark name (`lenet`, `alexnet`, …, as accepted by the CLI).
        name: String,
    },
    /// A model saved by `ranger-cli train` / `protect`, loaded from the server's disk.
    Path {
        /// Path to the saved-model JSON file.
        path: String,
    },
}

/// A complete, self-contained campaign request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// The model under test.
    pub model: ModelSpec,
    /// How many validation inputs to inject into.
    pub inputs: usize,
    /// The campaign configuration (trials, batch, workers, backend, fault, seed).
    pub config: CampaignConfig,
}

/// The on-disk representation written by `ranger-cli train` and `protect`: the model
/// plus a record of how it was produced. Lives here so both the CLI and the campaign
/// service read the same format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// The model itself (weights live in the graph's constant nodes).
    pub model: Model,
    /// Seed the model (and its dataset) was derived from.
    pub seed: u64,
    /// Whether the graph already contains Ranger's range-restriction operators.
    pub protected: bool,
    /// The bound percentile used when protecting, if any.
    pub percentile: Option<f64>,
}

impl SavedModel {
    /// Writes the model as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] if serialization or the write fails.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, serde_json::to_string(self)?)?;
        Ok(())
    }

    /// Reads a model from a JSON file written by [`SavedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] if the file cannot be read or decoded.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    }
}

/// A spec turned into the owned pieces a campaign needs: model, inputs and judge.
pub struct MaterializedCampaign {
    /// The model under test.
    pub model: Model,
    /// The validation inputs, one `[1, ...]` tensor per injected input.
    pub inputs: Vec<Tensor>,
    /// The SDC judge matching the model's task.
    pub judge: Box<dyn SdcJudge>,
    /// The campaign configuration the spec carried.
    pub config: CampaignConfig,
}

impl std::fmt::Debug for MaterializedCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializedCampaign")
            .field("model", &self.model.config)
            .field("inputs", &self.inputs.len())
            .field("judge", &self.judge.categories())
            .field("config", &self.config)
            .finish()
    }
}

impl CampaignSpec {
    /// Builds the model, inputs and judge this spec describes.
    ///
    /// Materialization is deterministic in the spec: `Kind` models are built from
    /// `config.seed`, and the validation inputs are drawn from the seed-keyed synthetic
    /// datasets — so the same spec materializes the same campaign in every process.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Spec`] for an unknown model name or a zero input count,
    /// and I/O / decode errors for an unreadable saved-model file.
    pub fn materialize(&self) -> Result<MaterializedCampaign, ServeError> {
        if self.inputs == 0 {
            return Err(ServeError::Spec(
                "a campaign needs at least one input".to_string(),
            ));
        }
        let model = match &self.model {
            ModelSpec::Kind { name } => {
                let kind: ModelKind = name.parse().map_err(ServeError::Spec)?;
                archs::build(&ModelConfig::new(kind), self.config.seed)
            }
            ModelSpec::Path { path } => SavedModel::load(Path::new(path))?.model,
        };
        let (inputs, judge): (Vec<Tensor>, Box<dyn SdcJudge>) = match model.task {
            Task::Classification { .. } => {
                let data = ModelZoo::classification_data(model.config.kind, self.config.seed);
                let n = self.inputs.min(data.validation.len());
                (
                    (0..n).map(|i| data.validation_batch(&[i]).0).collect(),
                    Box::new(ClassifierJudge::top1()),
                )
            }
            Task::Regression { unit } => {
                let data = ModelZoo::driving_data(self.config.seed);
                let n = self.inputs.min(data.validation.len());
                (
                    (0..n)
                        .map(|i| data.validation_batch(&[i], AngleUnit::Degrees).0)
                        .collect(),
                    Box::new(SteeringJudge::paper_thresholds(unit == AngleUnit::Radians)),
                )
            }
        };
        Ok(MaterializedCampaign {
            model,
            inputs,
            judge,
            config: self.config,
        })
    }
}

impl MaterializedCampaign {
    /// The injection target view over the owned model.
    pub fn target(&self) -> InjectionTarget<'_> {
        InjectionTarget {
            graph: &self.model.graph,
            input_name: &self.model.input_name,
            output: self.model.output,
            excluded: &self.model.excluded_from_injection,
        }
    }

    /// The campaign's fingerprint under its canonical (default) chunk partition.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Json`] if fingerprint serialization fails.
    pub fn fingerprint(&self) -> Result<String, ServeError> {
        campaign_fingerprint(
            &self.target(),
            &self.inputs,
            &self.config,
            &self.judge.categories(),
            default_chunk_len(&self.config),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenet_spec() -> CampaignSpec {
        CampaignSpec {
            model: ModelSpec::Kind {
                name: "lenet".to_string(),
            },
            inputs: 2,
            config: CampaignConfig {
                trials: 8,
                batch: 1,
                workers: 1,
                seed: 5,
                ..CampaignConfig::default()
            },
        }
    }

    #[test]
    fn materialization_is_deterministic_across_calls() {
        let spec = lenet_spec();
        let a = spec.materialize().unwrap();
        let b = spec.materialize().unwrap();
        assert_eq!(a.inputs.len(), 2);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    }

    #[test]
    fn fingerprint_tracks_the_spec() {
        let spec = lenet_spec();
        let reference = spec.materialize().unwrap().fingerprint().unwrap();

        let mut reseeded = lenet_spec();
        reseeded.config.seed += 1;
        assert_ne!(
            reference,
            reseeded.materialize().unwrap().fingerprint().unwrap()
        );

        let mut fewer_inputs = lenet_spec();
        fewer_inputs.inputs = 1;
        assert_ne!(
            reference,
            fewer_inputs.materialize().unwrap().fingerprint().unwrap()
        );
    }

    #[test]
    fn steering_specs_get_the_paper_judge() {
        let spec = CampaignSpec {
            model: ModelSpec::Kind {
                name: "dave".to_string(),
            },
            inputs: 1,
            config: CampaignConfig {
                trials: 4,
                seed: 2,
                ..CampaignConfig::default()
            },
        };
        let materialized = spec.materialize().unwrap();
        assert_eq!(materialized.judge.categories().len(), 4);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut unknown = lenet_spec();
        unknown.model = ModelSpec::Kind {
            name: "resnext".to_string(),
        };
        assert!(matches!(
            unknown.materialize().unwrap_err(),
            ServeError::Spec(_)
        ));

        let mut empty = lenet_spec();
        empty.inputs = 0;
        assert!(matches!(
            empty.materialize().unwrap_err(),
            ServeError::Spec(_)
        ));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = lenet_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
