//! The TCP front end: a thread-per-connection campaign server.
//!
//! [`CampaignServer`] binds a [`std::net::TcpListener`], then serves line-JSON
//! [`Request`]s. Each submitted campaign runs on its own worker thread, driving the
//! checkpointed [`driver`](crate::driver) with a sink that appends events to an
//! in-memory log; any number of stream connections replay that log and follow it live
//! via a condvar. One [`ThreadPool`] value per worker-count is shared across all
//! campaigns ever submitted to the server, so back-to-back requests reuse the pool
//! configuration instead of rebuilding per request.
//!
//! The server is deliberately boring: blocking I/O, `std` threads, no async runtime —
//! campaign forward passes dominate any realistic workload by orders of magnitude.

use crate::checkpoint::ChunkRecord;
use crate::coordinator::Coordinator;
use crate::driver::{drive, DriveOutcome};
use crate::lease::LeaseError;
use crate::protocol::{Request, Response, StatusInfo};
use crate::sink::{CampaignEvent, CampaignSink, SinkFlow};
use crate::spec::{CampaignSpec, MaterializedCampaign};
use crate::{CheckpointStore, ServeError};
use ranger_inject::{CampaignResult, PreparedCampaign};
use ranger_runtime::ThreadPool;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A campaign's lifecycle state as exposed over the wire.
#[derive(Debug, Clone, PartialEq)]
enum RunState {
    Running,
    Done,
    Cancelled,
    Failed(String),
}

impl RunState {
    fn label(&self) -> String {
        match self {
            RunState::Running => "running".to_string(),
            RunState::Done => "done".to_string(),
            RunState::Cancelled => "cancelled".to_string(),
            RunState::Failed(message) => format!("failed: {message}"),
        }
    }
}

/// Mutable progress of one campaign, guarded by the handle's mutex.
struct Progress {
    state: RunState,
    events: Vec<CampaignEvent>,
    total_chunks: usize,
    resumed_chunks: usize,
    trials_total: u64,
    done_chunks: usize,
    /// Trials replayed from the checkpoint rather than executed — excluded from the
    /// trials/sec rate so resuming a near-finished campaign doesn't report a miracle.
    resumed_trials: u64,
    /// When the worker was registered; the denominator of the trials/sec rate.
    started: std::time::Instant,
    /// When the campaign reached a terminal state, freezing the rate.
    finished: Option<std::time::Instant>,
    categories: Vec<String>,
    cumulative: Option<CampaignResult>,
}

/// The coordination state of a campaign submitted with [`Request::SubmitRemote`]:
/// the lease/merge coordinator plus the spec joining workers fetch.
struct RemoteCampaign {
    coordinator: Mutex<Coordinator>,
    spec: CampaignSpec,
}

/// One campaign registered with the server.
struct CampaignHandle {
    id: String,
    cancel: AtomicBool,
    progress: Mutex<Progress>,
    changed: Condvar,
    /// `Some` for coordinated (sharded) campaigns; `None` for locally-driven ones.
    remote: Option<RemoteCampaign>,
}

impl CampaignHandle {
    fn status(&self) -> StatusInfo {
        let progress = self.progress.lock().expect("progress lock poisoned");
        let trials_done = progress.cumulative.as_ref().map(|c| c.trials).unwrap_or(0);
        let executed = trials_done.saturating_sub(progress.resumed_trials);
        let elapsed = progress
            .finished
            .map(|end| end.duration_since(progress.started))
            .unwrap_or_else(|| progress.started.elapsed())
            .as_secs_f64();
        let trials_per_sec = if executed > 0 && elapsed > 0.0 {
            executed as f64 / elapsed
        } else {
            0.0
        };
        StatusInfo {
            id: self.id.clone(),
            state: progress.state.label(),
            categories: progress.categories.clone(),
            sdc_counts: progress
                .cumulative
                .as_ref()
                .map(|c| c.sdc_counts.clone())
                .unwrap_or_default(),
            trials_done,
            trials_total: progress.trials_total,
            done_chunks: progress.done_chunks,
            total_chunks: progress.total_chunks,
            resumed_chunks: progress.resumed_chunks,
            trials_per_sec,
        }
    }

    fn finish(&self, state: RunState) {
        let mut progress = self.progress.lock().expect("progress lock poisoned");
        if progress.state != RunState::Running {
            return; // idempotent: coordinated campaigns can race cancel vs final push
        }
        progress.state = state;
        progress.finished = Some(std::time::Instant::now());
        self.changed.notify_all();
        ranger_obs::registry()
            .gauge("serve.active_campaigns")
            .add(-1);
    }
}

/// The sink a campaign worker drives: events go into the handle's log, stream followers
/// are woken, and a pending cancel request stops the drive.
struct ServerSink {
    handle: Arc<CampaignHandle>,
}

impl CampaignSink for ServerSink {
    fn event(&mut self, event: &CampaignEvent) -> SinkFlow {
        let mut progress = self.handle.progress.lock().expect("progress lock poisoned");
        match event {
            CampaignEvent::GoldenDone {
                total_chunks,
                resumed_chunks,
                trials_total,
                categories,
            } => {
                progress.total_chunks = *total_chunks;
                progress.resumed_chunks = *resumed_chunks;
                progress.trials_total = *trials_total;
                progress.categories = categories.clone();
            }
            CampaignEvent::ChunkDone {
                tally,
                resumed,
                cumulative,
                ..
            } => {
                progress.done_chunks += 1;
                if *resumed {
                    progress.resumed_trials += tally.trials;
                }
                progress.cumulative = Some(cumulative.clone());
            }
            CampaignEvent::CampaignDone { result } => {
                progress.cumulative = Some(result.clone());
            }
        }
        progress.events.push(event.clone());
        self.handle.changed.notify_all();
        drop(progress);
        if self.handle.cancel.load(Ordering::SeqCst) {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }
}

/// Shared server state: the campaign registry, the pool cache and the shutdown flag.
struct ServerState {
    checkpoint_dir: PathBuf,
    campaigns: Mutex<HashMap<String, Arc<CampaignHandle>>>,
    /// One pool value per worker count, shared by every campaign the server ever runs.
    pools: Mutex<HashMap<usize, ThreadPool>>,
    shutdown: AtomicBool,
}

impl ServerState {
    fn pool_for(&self, workers: usize) -> ThreadPool {
        self.pools
            .lock()
            .expect("pool lock poisoned")
            .entry(workers.max(1))
            .or_insert_with(|| ThreadPool::new(workers.max(1)))
            .clone()
    }
}

/// A bound, not-yet-running campaign server.
pub struct CampaignServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl CampaignServer {
    /// Binds the server to `addr` (e.g. `127.0.0.1:0` for an ephemeral port), keeping
    /// campaign checkpoints under `checkpoint_dir` (one file per campaign fingerprint).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the bind or checkpoint-directory creation fails.
    pub fn bind(addr: &str, checkpoint_dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let checkpoint_dir = checkpoint_dir.into();
        std::fs::create_dir_all(&checkpoint_dir)?;
        let listener = TcpListener::bind(addr)?;
        // A server exists to be observed: turn the registry on so the `metrics`
        // request has something to report. Metrics never draw RNG or steer results,
        // so this cannot perturb campaign counts.
        ranger_obs::set_enabled(true);
        Ok(CampaignServer {
            listener,
            state: Arc::new(ServerState {
                checkpoint_dir,
                campaigns: Mutex::new(HashMap::new()),
                pools: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The address the server is listening on (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves connections until a [`Request::Shutdown`] arrives. Each connection is
    /// handled on its own thread; campaign workers detach and keep checkpointing even
    /// if their submitter disconnects.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if accepting fails for a reason other than shutdown.
    pub fn run(self) -> Result<(), ServeError> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }
}

/// Reads the connection's single request line and dispatches it.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(request) => request,
        Err(e) => {
            observe_request("unreadable");
            let _ = write_line(
                &mut writer,
                &Response::Error {
                    message: format!("unreadable request from {peer:?}: {e}"),
                },
            );
            return;
        }
    };
    observe_request(match request {
        Request::Submit { .. } => "submit",
        Request::SubmitRemote { .. } => "submit_remote",
        Request::Spec { .. } => "spec",
        Request::Claim { .. } => "claim",
        Request::Renew { .. } => "renew",
        Request::Release { .. } => "release",
        Request::Push { .. } => "push",
        Request::Status { .. } => "status",
        Request::Stream { .. } => "stream",
        Request::Cancel { .. } => "cancel",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    });
    match request {
        Request::Submit { spec } => {
            let response = match submit(state, spec) {
                Ok(response) => response,
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            };
            let _ = write_line(&mut writer, &response);
        }
        Request::SubmitRemote { spec } => {
            let response = match submit_remote(state, spec) {
                Ok(response) => response,
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            };
            let _ = write_line(&mut writer, &response);
        }
        Request::Spec { id } => {
            let response = match lookup(state, &id) {
                Some(handle) => match &handle.remote {
                    Some(remote) => Response::Spec {
                        spec: remote.spec.clone(),
                    },
                    None => lease_denied(LeaseError::NotRemote { id }),
                },
                None => unknown_campaign(&id),
            };
            let _ = write_line(&mut writer, &response);
        }
        Request::Claim {
            id,
            worker,
            ttl_ms,
            max_chunks,
            range,
        } => {
            let response = with_coordinator(state, &id, |handle, coordinator| {
                let now = Instant::now();
                match range {
                    Some((start, end)) => {
                        match coordinator.claim_range(&worker, start, end, ttl_ms, now) {
                            Ok(grant) => Response::Leased { grant },
                            Err(error) => lease_denied(error),
                        }
                    }
                    None => match coordinator.claim(&worker, max_chunks, ttl_ms, now) {
                        Some(grant) => Response::Leased { grant },
                        None => {
                            let state_label = handle
                                .progress
                                .lock()
                                .expect("progress lock poisoned")
                                .state
                                .label();
                            Response::NoWork {
                                state: state_label,
                                retry_ms: CLAIM_RETRY_MS,
                            }
                        }
                    },
                }
            });
            let _ = write_line(&mut writer, &response);
        }
        Request::Renew { id, token, ttl_ms } => {
            let response = with_coordinator(state, &id, |_handle, coordinator| {
                match coordinator.renew(token, ttl_ms, Instant::now()) {
                    Ok(grant) => Response::Leased { grant },
                    Err(error) => lease_denied(error),
                }
            });
            let _ = write_line(&mut writer, &response);
        }
        Request::Release { id, token } => {
            let response = with_coordinator(state, &id, |_handle, coordinator| {
                match coordinator.release(token, Instant::now()) {
                    Ok(()) => Response::Ok,
                    Err(error) => lease_denied(error),
                }
            });
            let _ = write_line(&mut writer, &response);
        }
        Request::Push { id, token, record } => {
            let response = push_record(state, &id, token, record);
            let _ = write_line(&mut writer, &response);
        }
        Request::Status { id } => {
            let response = match lookup(state, &id) {
                Some(handle) => Response::Status(handle.status()),
                None => unknown_campaign(&id),
            };
            let _ = write_line(&mut writer, &response);
        }
        Request::Stream { id } => match lookup(state, &id) {
            Some(handle) => stream_events(&handle, &mut writer),
            None => {
                let _ = write_line(&mut writer, &unknown_campaign(&id));
            }
        },
        Request::Cancel { id } => {
            let response = match lookup(state, &id) {
                Some(handle) => {
                    handle.cancel.store(true, Ordering::SeqCst);
                    if let Some(remote) = &handle.remote {
                        // No local driver thread will observe the flag: stop the
                        // coordinator (claims start answering NoWork) and record the
                        // terminal state here.
                        remote
                            .coordinator
                            .lock()
                            .expect("coordinator lock poisoned")
                            .stop();
                        handle.finish(RunState::Cancelled);
                    }
                    handle.changed.notify_all();
                    Response::Ok
                }
                None => unknown_campaign(&id),
            };
            let _ = write_line(&mut writer, &response);
        }
        Request::Metrics => {
            let _ = write_line(
                &mut writer,
                &Response::Metrics {
                    snapshot: ranger_obs::registry().snapshot().to_json(),
                },
            );
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = write_line(&mut writer, &Response::Ok);
            // Unblock the accept loop so `run` observes the flag and returns.
            if let Ok(addr) = writer.get_ref().local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}

/// Counts one request under `serve.requests.<kind>` (a no-op registry write when
/// metrics are off; never branches on any observed value).
fn observe_request(kind: &str) {
    if ranger_obs::enabled() {
        ranger_obs::registry()
            .counter(&format!("serve.requests.{kind}"))
            .increment();
    }
}

fn lookup(state: &ServerState, id: &str) -> Option<Arc<CampaignHandle>> {
    state
        .campaigns
        .lock()
        .expect("campaign registry poisoned")
        .get(id)
        .cloned()
}

fn unknown_campaign(id: &str) -> Response {
    Response::Error {
        message: format!("no campaign with id {id} on this server"),
    }
}

/// Delay a worker should wait before re-polling a campaign whose pending chunks are
/// all out on live leases.
const CLAIM_RETRY_MS: u64 = 250;

fn lease_denied(error: LeaseError) -> Response {
    Response::LeaseDenied { error }
}

/// Looks up a coordinated campaign and runs `f` with its coordinator locked. Unknown
/// ids and locally-driven campaigns answer with the matching typed lease refusal.
fn with_coordinator(
    state: &ServerState,
    id: &str,
    f: impl FnOnce(&CampaignHandle, &mut Coordinator) -> Response,
) -> Response {
    let Some(handle) = lookup(state, id) else {
        return lease_denied(LeaseError::UnknownCampaign { id: id.to_string() });
    };
    let Some(remote) = &handle.remote else {
        return lease_denied(LeaseError::NotRemote { id: id.to_string() });
    };
    let mut coordinator = remote
        .coordinator
        .lock()
        .expect("coordinator lock poisoned");
    f(&handle, &mut coordinator)
}

/// Registers a campaign for coordination: the server leases its chunks out and merges
/// pushed records, running no forward passes of its own.
///
/// Mirrors [`submit`]'s idempotency: a running coordinated campaign is re-addressed
/// without touching its checkpoint; anything else (re)opens the store, replays the
/// durable prefix as resumed chunks, and — if the store already covers the whole
/// campaign — finishes immediately.
fn submit_remote(state: &Arc<ServerState>, spec: CampaignSpec) -> Result<Response, ServeError> {
    let materialized = spec.materialize()?;
    let id = materialized.fingerprint()?;
    let chunks = ranger_inject::campaign_chunks(
        &materialized.config,
        materialized.inputs.len(),
        ranger_inject::default_chunk_len(&materialized.config),
    );
    let total_chunks = chunks.len();

    let mut campaigns = state.campaigns.lock().expect("campaign registry poisoned");
    if let Some(existing) = campaigns.get(&id) {
        let progress = existing.progress.lock().expect("progress lock poisoned");
        if progress.state == RunState::Running {
            // Already coordinated (or locally running): point the worker fleet at it.
            // The live owner holds the checkpoint; never reopen it here.
            return Ok(Response::Submitted {
                id,
                total_chunks,
                resumed_chunks: progress.resumed_chunks,
            });
        }
    }
    let store = CheckpointStore::open(&state.checkpoint_dir.join(format!("{id}.jsonl")), &id)?;
    let categories = materialized.judge.categories();
    let trials_total = (materialized.config.trials * materialized.inputs.len()) as u64;
    let coordinator = Coordinator::new(store, chunks, categories, trials_total)?;
    let resumed_chunks = coordinator.resumed_chunks();
    let handle = Arc::new(CampaignHandle {
        id: id.clone(),
        cancel: AtomicBool::new(false),
        progress: Mutex::new(Progress {
            state: RunState::Running,
            events: Vec::new(),
            total_chunks,
            resumed_chunks,
            trials_total,
            done_chunks: 0,
            resumed_trials: 0,
            started: std::time::Instant::now(),
            finished: None,
            categories: Vec::new(),
            cumulative: None,
        }),
        changed: Condvar::new(),
        remote: Some(RemoteCampaign {
            coordinator: Mutex::new(coordinator),
            spec,
        }),
    });
    campaigns.insert(id.clone(), Arc::clone(&handle));
    drop(campaigns);
    ranger_obs::registry()
        .gauge("serve.active_campaigns")
        .add(1);

    // Replay the resumed prefix into the event log now, so streamers and status see
    // the same opening sequence a local drive produces.
    let remote = handle.remote.as_ref().expect("just constructed as remote");
    let mut coordinator = remote
        .coordinator
        .lock()
        .expect("coordinator lock poisoned");
    let mut sink = ServerSink {
        handle: Arc::clone(&handle),
    };
    coordinator.begin(&mut sink);
    let done = coordinator.is_done();
    drop(coordinator);
    if done {
        handle.finish(RunState::Done);
    }
    Ok(Response::Submitted {
        id,
        total_chunks,
        resumed_chunks,
    })
}

/// Absorbs one pushed record into a coordinated campaign, finishing the campaign when
/// its last chunk lands.
fn push_record(state: &Arc<ServerState>, id: &str, token: u64, record: ChunkRecord) -> Response {
    let Some(handle) = lookup(state, id) else {
        return lease_denied(LeaseError::UnknownCampaign { id: id.to_string() });
    };
    let Some(remote) = &handle.remote else {
        return lease_denied(LeaseError::NotRemote { id: id.to_string() });
    };
    let mut coordinator = remote
        .coordinator
        .lock()
        .expect("coordinator lock poisoned");
    let mut sink = ServerSink {
        handle: Arc::clone(&handle),
    };
    let result = coordinator.absorb(id, token, record, Instant::now(), &mut sink);
    let done = coordinator.is_done();
    let stopped = coordinator.is_stopped();
    drop(coordinator);
    match result {
        Ok(()) => {
            if done {
                handle.finish(RunState::Done);
            } else if stopped {
                handle.finish(RunState::Cancelled);
            }
            Response::Ok
        }
        Err(ServeError::Lease(error)) => lease_denied(error),
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

/// Registers a campaign and starts (or re-addresses) its worker.
///
/// The spec is materialized synchronously so the response can carry the real partition
/// and resume counts; the expensive part — golden passes and the trial fleet — happens
/// on the detached worker thread. Identical specs fingerprint identically, so a
/// resubmission while the campaign runs simply re-addresses it, and a resubmission
/// after a crash resumes from its checkpoint.
fn submit(state: &Arc<ServerState>, spec: CampaignSpec) -> Result<Response, ServeError> {
    let materialized = spec.materialize()?;
    let id = materialized.fingerprint()?;
    let total_chunks = ranger_inject::campaign_chunks(
        &materialized.config,
        materialized.inputs.len(),
        ranger_inject::default_chunk_len(&materialized.config),
    )
    .len();

    let mut campaigns = state.campaigns.lock().expect("campaign registry poisoned");
    if let Some(existing) = campaigns.get(&id) {
        let progress = existing.progress.lock().expect("progress lock poisoned");
        if progress.state == RunState::Running {
            // Same campaign, already in flight: point the client at it. The checkpoint
            // must NOT be reopened here — the live worker owns the file, and open's
            // torn-tail truncation would race its appends.
            return Ok(Response::Submitted {
                id,
                total_chunks,
                resumed_chunks: progress.resumed_chunks,
            });
        }
    }
    // Not running: this submit owns the checkpoint until its worker finishes.
    let store = CheckpointStore::open(&state.checkpoint_dir.join(format!("{id}.jsonl")), &id)?;
    let resumed_chunks = store.len();
    let handle = Arc::new(CampaignHandle {
        id: id.clone(),
        cancel: AtomicBool::new(false),
        progress: Mutex::new(Progress {
            state: RunState::Running,
            events: Vec::new(),
            total_chunks,
            resumed_chunks,
            trials_total: (materialized.config.trials * materialized.inputs.len()) as u64,
            done_chunks: 0,
            resumed_trials: 0,
            started: std::time::Instant::now(),
            finished: None,
            categories: Vec::new(),
            cumulative: None,
        }),
        changed: Condvar::new(),
        remote: None,
    });
    campaigns.insert(id.clone(), Arc::clone(&handle));
    drop(campaigns);
    ranger_obs::registry()
        .gauge("serve.active_campaigns")
        .add(1);

    let pool = state.pool_for(materialized.config.workers);
    let worker_handle = Arc::clone(&handle);
    std::thread::spawn(move || run_campaign_worker(materialized, store, pool, worker_handle));
    Ok(Response::Submitted {
        id,
        total_chunks,
        resumed_chunks,
    })
}

/// The detached campaign worker: prepares, drives, and records the terminal state.
fn run_campaign_worker(
    materialized: MaterializedCampaign,
    mut store: CheckpointStore,
    pool: ThreadPool,
    handle: Arc<CampaignHandle>,
) {
    let target = materialized.target();
    let prepared = match PreparedCampaign::new(
        &target,
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    ) {
        Ok(prepared) => prepared,
        Err(e) => {
            handle.finish(RunState::Failed(e.to_string()));
            return;
        }
    };
    let mut sink = ServerSink {
        handle: Arc::clone(&handle),
    };
    match drive(&prepared, &mut store, &pool, &handle.cancel, &mut sink) {
        Ok(DriveOutcome::Completed(_)) => handle.finish(RunState::Done),
        Ok(DriveOutcome::Stopped(_)) => handle.finish(RunState::Cancelled),
        Err(e) => handle.finish(RunState::Failed(e.to_string())),
    }
}

/// Streams a campaign's event log — replay first, then live — ending with the terminal
/// state line.
fn stream_events(handle: &CampaignHandle, writer: &mut BufWriter<TcpStream>) {
    let mut next = 0usize;
    loop {
        // Snapshot under the lock, write outside it, so a slow client never stalls the
        // campaign worker.
        let (batch, state) = {
            let mut progress = handle.progress.lock().expect("progress lock poisoned");
            while progress.events.len() == next && progress.state == RunState::Running {
                progress = handle
                    .changed
                    .wait(progress)
                    .expect("progress lock poisoned");
            }
            let batch: Vec<CampaignEvent> = progress.events[next..].to_vec();
            (batch, progress.state.clone())
        };
        next += batch.len();
        for event in batch {
            if write_line(writer, &Response::Event(event)).is_err() {
                return; // client went away; the campaign keeps running
            }
        }
        if state != RunState::Running {
            let _ = write_line(
                writer,
                &Response::End {
                    state: state.label(),
                },
            );
            return;
        }
    }
}

fn write_line(writer: &mut BufWriter<TcpStream>, response: &Response) -> Result<(), ServeError> {
    let line = serde_json::to_string(response)?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}
