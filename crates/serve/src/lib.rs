//! A streaming, resumable campaign service for long fault-injection fleets.
//!
//! The paper's numbers are aggregate SDC statistics over very large injection campaigns.
//! [`ranger_inject::run_campaign`] computes them in one in-process call — which means a
//! million-trial campaign that dies at trial 900k loses everything, and nobody can watch
//! the tallies converge. This crate turns the campaign runner into a **service**, in
//! three layers:
//!
//! * [`driver`] — a chunked campaign driver built on
//!   [`PreparedCampaign`](ranger_inject::PreparedCampaign): work units execute on the
//!   [`ranger_runtime`] pool and an ordered stream of incremental tally events flows
//!   through a [`CampaignSink`].
//! * [`checkpoint`] — an append-only, fsync'd, versioned file of completed-chunk
//!   records, keyed by a [campaign fingerprint](fingerprint::campaign_fingerprint). A
//!   restarted driver verifies the fingerprint, skips the completed chunks and — because
//!   fault plans are keyed by `(input, trial)` index, never by schedule — reproduces the
//!   counts of an uninterrupted run bit for bit.
//! * [`server`] / [`client`] — a front end on [`std::net::TcpListener`] speaking
//!   line-delimited JSON (submit / status / stream / cancel), with a matching blocking
//!   client used by the CLI.
//! * [`lease`] / [`coordinator`] / [`worker`] — the multi-host sharding layer: the
//!   server can coordinate a campaign instead of running it, leasing exclusive chunk
//!   ranges to worker hosts with expiring, renewable tokens and merge-verifying every
//!   record they push back before it reaches the durable store. Because fault plans
//!   are keyed by `(input, trial)` index, ANY partition of the chunk space across any
//!   number of hosts reproduces the single-host counts bit for bit.
//!
//! Everything is plain `std` plus the workspace's vendored serde: no async runtime, no
//! external services. Campaign identity doubles as the wire-level id, so re-submitting a
//! campaign to a restarted server *is* resuming it.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod client;
pub mod coordinator;
pub mod driver;
pub mod fingerprint;
pub mod lease;
pub mod protocol;
pub mod server;
pub mod sink;
pub mod spec;
pub mod worker;

pub use checkpoint::{CheckpointStore, ChunkRecord, CHECKPOINT_VERSION};
pub use client::{ClaimOutcome, Client, Submitted};
pub use coordinator::Coordinator;
pub use driver::{drive, DriveOutcome};
pub use fingerprint::campaign_fingerprint;
pub use lease::{LeaseError, LeaseGrant, LeaseTable, TouchOutcome, MAX_LEASE_MS};
pub use protocol::{Request, Response, StatusInfo};
pub use server::CampaignServer;
pub use sink::{CampaignEvent, CampaignSink, CollectSink, NullSink, SinkFlow};
pub use spec::{CampaignSpec, MaterializedCampaign, ModelSpec, SavedModel};
pub use worker::{
    default_lease_ms, run_sharded, work, ShardOptions, WorkEvent, WorkOptions, WorkReport,
};

use std::fmt;

/// Errors surfaced by the campaign service.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying campaign preparation or execution failed.
    Campaign(ranger_inject::CampaignError),
    /// A file operation (checkpoint, saved model) failed.
    Io(std::io::Error),
    /// A JSON payload (wire message, checkpoint record, saved model) failed to encode or
    /// decode.
    Json(serde_json::Error),
    /// A checkpoint file exists but belongs to a different campaign.
    FingerprintMismatch {
        /// The fingerprint of the campaign being resumed.
        expected: String,
        /// The fingerprint recorded in the checkpoint file.
        found: String,
    },
    /// A checkpoint file is structurally invalid beyond a torn final record.
    Corrupt(String),
    /// A wire request was malformed or referenced an unknown campaign.
    Protocol(String),
    /// A campaign specification could not be materialized into a runnable campaign.
    Spec(String),
    /// A lease operation was refused — the typed reason a coordinator (or its client)
    /// reports for claim/renew/release/push refusals.
    Lease(lease::LeaseError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Campaign(e) => write!(f, "campaign error: {e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Json(e) => write!(f, "JSON error: {e}"),
            ServeError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: the file records campaign {found} but \
                 this campaign is {expected} (same graph, config, seed and backend are \
                 required to resume)"
            ),
            ServeError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            ServeError::Lease(e) => write!(f, "lease refused: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Campaign(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Json(e) => Some(e),
            ServeError::Lease(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ranger_inject::CampaignError> for ServeError {
    fn from(e: ranger_inject::CampaignError) -> Self {
        ServeError::Campaign(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e)
    }
}

impl From<lease::LeaseError> for ServeError {
    fn from(e: lease::LeaseError) -> Self {
        ServeError::Lease(e)
    }
}
