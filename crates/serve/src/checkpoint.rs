//! The append-only, fsync'd checkpoint store.
//!
//! A checkpoint file is a line-JSON log: a header line naming the format version and the
//! campaign [fingerprint](crate::fingerprint::campaign_fingerprint), then one record per
//! completed chunk, appended in completion order and `fsync`'d before the chunk is
//! reported downstream — so every chunk event a client ever observed is durable. On
//! open, a file whose final line was torn by a crash mid-write is truncated back to the
//! last complete record (the log is append-only, so everything before the tear is
//! intact); corruption anywhere else is refused loudly.
//!
//! Records are keyed by chunk *index* into the campaign's canonical partition, so the
//! file's order carries no meaning and replaying is order-independent. The driver
//! additionally verifies each record's geometry against the prepared campaign before
//! trusting it — a fingerprint match plus geometry match is what makes resumed counts
//! provably identical to an uninterrupted run.

use crate::ServeError;
use ranger_inject::{ChunkTally, TrialChunk};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version of the on-disk checkpoint format; files with any other version are refused.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The header line opening every checkpoint file.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    version: u32,
    fingerprint: String,
}

/// One durable completed-chunk record: the chunk's geometry plus its tally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// The work unit this record completes.
    pub chunk: TrialChunk,
    /// The partial counts that unit produced.
    pub tally: ChunkTally,
}

impl ChunkRecord {
    /// The merge-verify pass: checks this record's geometry and tally shape against the
    /// campaign's canonical partition before it is trusted.
    ///
    /// A record is acceptable only if its chunk index exists in the partition, its
    /// `(input, start, len)` geometry is byte-identical to the partition's chunk at
    /// that index, its tally carries exactly `categories` SDC counters, and its trial
    /// count equals the chunk length. The local driver runs this over resumed records;
    /// the sharding coordinator runs it over every record a remote worker pushes —
    /// a fingerprint match proves the *campaign* is the same, this proves the *record*
    /// actually belongs to it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Corrupt`] naming the first mismatch.
    pub fn verify_against(
        &self,
        chunks: &[TrialChunk],
        categories: usize,
    ) -> Result<(), ServeError> {
        let expected = chunks.get(self.chunk.index);
        if expected != Some(&self.chunk) {
            return Err(ServeError::Corrupt(format!(
                "checkpoint record for chunk {} has geometry {:?} but the campaign \
                 partition expects {:?}",
                self.chunk.index, self.chunk, expected
            )));
        }
        if self.tally.sdc_counts.len() != categories {
            return Err(ServeError::Corrupt(format!(
                "checkpoint record for chunk {} carries {} SDC counters but the \
                 campaign judges {categories} categories",
                self.chunk.index,
                self.tally.sdc_counts.len()
            )));
        }
        if self.tally.trials != self.chunk.len as u64 {
            return Err(ServeError::Corrupt(format!(
                "checkpoint record for chunk {} tallies {} trials but the chunk spans \
                 {} trials",
                self.chunk.index, self.tally.trials, self.chunk.len
            )));
        }
        Ok(())
    }
}

/// An open checkpoint file: the already-completed records plus an append handle.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    file: File,
    fingerprint: String,
    completed: BTreeMap<usize, ChunkRecord>,
}

impl CheckpointStore {
    /// Opens (or creates) the checkpoint file at `path` for the campaign identified by
    /// `fingerprint`.
    ///
    /// A fresh file gets a header and is fsync'd immediately. An existing file is
    /// replayed: its records populate [`CheckpointStore::completed`], and a torn final
    /// line — the signature of a crash mid-append — is truncated away, with one
    /// warning line (naming the byte offset the file was cut back to) on stderr and
    /// a tick of the `checkpoint.torn_tails` counter in the global metrics registry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FingerprintMismatch`] if the file belongs to a different
    /// campaign, [`ServeError::Corrupt`] if it is malformed beyond a torn tail (wrong
    /// version, unparseable interior line, missing header), or [`ServeError::Io`] on
    /// file-system failures.
    pub fn open(path: &Path, fingerprint: &str) -> Result<Self, ServeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut content = String::new();
        file.read_to_string(&mut content)?;

        let mut completed = BTreeMap::new();
        if content.is_empty() {
            let header = serde_json::to_string(&Header {
                version: CHECKPOINT_VERSION,
                fingerprint: fingerprint.to_string(),
            })?;
            file.write_all(header.as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_data()?;
        } else {
            // Walk the log line by line, tracking the byte offset of the last line that
            // parsed, so a torn tail can be truncated precisely.
            let mut lines = split_with_offsets(&content);
            let (header_line, header_end) = lines
                .next()
                .ok_or_else(|| ServeError::Corrupt("empty header line".to_string()))?;
            let header: Header = serde_json::from_str(header_line).map_err(|e| {
                ServeError::Corrupt(format!("unreadable header '{header_line}': {e}"))
            })?;
            if header.version != CHECKPOINT_VERSION {
                return Err(ServeError::Corrupt(format!(
                    "checkpoint format version {} is not the supported version \
                     {CHECKPOINT_VERSION}",
                    header.version
                )));
            }
            if header.fingerprint != fingerprint {
                return Err(ServeError::FingerprintMismatch {
                    expected: fingerprint.to_string(),
                    found: header.fingerprint,
                });
            }
            let mut valid_len = header_end;
            let mut torn = false;
            while let Some((line, end)) = lines.next() {
                if line.is_empty() {
                    continue; // a trailing newline produces one empty fragment
                }
                match serde_json::from_str::<ChunkRecord>(line) {
                    Ok(record) => {
                        completed.insert(record.chunk.index, record);
                        valid_len = end;
                    }
                    Err(e) => {
                        // Only the final line may fail to parse (a record torn by a
                        // crash mid-write); anything earlier means real corruption.
                        if lines.next().is_some() {
                            return Err(ServeError::Corrupt(format!(
                                "unreadable interior record '{line}': {e}"
                            )));
                        }
                        torn = true;
                    }
                }
            }
            if torn || valid_len < content.len() as u64 {
                // A tear is expected after a kill, but never silent: one warning line
                // with the cut offset, and a registry count for fleet-level visibility.
                eprintln!(
                    "warning: checkpoint {} had a torn tail; truncated from {} to {} bytes \
                     (the cut record's chunk will re-run on resume)",
                    path.display(),
                    content.len(),
                    valid_len
                );
                ranger_obs::registry()
                    .counter("checkpoint.torn_tails")
                    .increment();
                file.set_len(valid_len)?;
                file.sync_data()?;
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(CheckpointStore {
            path: path.to_path_buf(),
            file,
            fingerprint: fingerprint.to_string(),
            completed,
        })
    }

    /// The campaign fingerprint this store is keyed by.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed-chunk records recovered from (and appended to) this file, keyed by
    /// chunk index.
    pub fn completed(&self) -> &BTreeMap<usize, ChunkRecord> {
        &self.completed
    }

    /// Number of completed chunks on record.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no chunk has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Durably appends one completed-chunk record: the line is written and `fsync`'d
    /// before this returns, so a caller that then reports the chunk downstream can
    /// guarantee every reported chunk survives a kill.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Json`] or [`ServeError::Io`] if encoding or the durable
    /// write fails.
    pub fn append(&mut self, record: &ChunkRecord) -> Result<(), ServeError> {
        let line = serde_json::to_string(record)?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        // The fsync dominates append cost by orders of magnitude, so the registry
        // lookup here is noise — no need to cache the handle on the store.
        if ranger_obs::enabled() {
            let hist = ranger_obs::registry().histogram("checkpoint.sync_nanos");
            let start = std::time::Instant::now();
            self.file.sync_data()?;
            hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        } else {
            self.file.sync_data()?;
        }
        self.completed.insert(record.chunk.index, record.clone());
        Ok(())
    }
}

/// Splits `content` at newlines, yielding each line together with the byte offset just
/// past its terminating newline (or past the end for an unterminated final line).
fn split_with_offsets(content: &str) -> impl Iterator<Item = (&str, u64)> {
    let bytes_total = content.len() as u64;
    content.split('\n').scan(0u64, move |offset, line| {
        let start = *offset;
        let end = start + line.len() as u64;
        // +1 for the newline, unless this is an unterminated final fragment.
        *offset = (end + 1).min(bytes_total.max(end));
        Some((line, (*offset).min(bytes_total)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ranger-serve-checkpoint-{}-{name}.jsonl",
            std::process::id()
        ))
    }

    fn record(index: usize, trials: u64) -> ChunkRecord {
        ChunkRecord {
            chunk: TrialChunk {
                index,
                input: 0,
                start: index * trials as usize,
                len: trials as usize,
            },
            tally: ChunkTally {
                sdc_counts: vec![index as u64],
                trials,
                unactivated: 1,
            },
        }
    }

    #[test]
    fn append_and_reopen_round_trips_records() {
        let path = tmp("round-trip");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = CheckpointStore::open(&path, "f00d").unwrap();
            assert!(store.is_empty());
            store.append(&record(0, 8)).unwrap();
            store.append(&record(2, 8)).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = CheckpointStore::open(&path, "f00d").unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.completed()[&0], record(0, 8));
        assert_eq!(store.completed()[&2], record(2, 8));
        assert!(!store.completed().contains_key(&1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_torn_final_record_is_truncated_and_earlier_records_survive() {
        let path = tmp("torn-tail");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = CheckpointStore::open(&path, "f00d").unwrap();
            store.append(&record(0, 8)).unwrap();
            store.append(&record(1, 8)).unwrap();
        }
        // Simulate a crash mid-append: half a record at the end, no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"chunk\":{\"index\":2,\"inp").unwrap();
        drop(file);

        // The truncation must be visible in the metrics registry. The flag is
        // process-global, so sample/restore it and use a delta-based assertion.
        let was_enabled = ranger_obs::enabled();
        ranger_obs::set_enabled(true);
        let torn_before = ranger_obs::registry()
            .counter("checkpoint.torn_tails")
            .value();

        let before = std::fs::metadata(&path).unwrap().len();
        let store = CheckpointStore::open(&path, "f00d").unwrap();
        assert_eq!(store.len(), 2, "intact records must survive the tear");
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "the torn tail must be truncated");

        let torn_after = ranger_obs::registry()
            .counter("checkpoint.torn_tails")
            .value();
        ranger_obs::set_enabled(was_enabled);
        assert!(
            torn_after > torn_before,
            "the torn tail must tick checkpoint.torn_tails ({torn_before} -> {torn_after})"
        );

        // The truncated file reopens cleanly and accepts new appends.
        let mut store = CheckpointStore::open(&path, "f00d").unwrap();
        store.append(&record(2, 8)).unwrap();
        drop(store);
        let store = CheckpointStore::open(&path, "f00d").unwrap();
        assert_eq!(store.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(CheckpointStore::open(&path, "aaaa").unwrap());
        let err = CheckpointStore::open(&path, "bbbb").unwrap_err();
        assert!(
            matches!(err, ServeError::FingerprintMismatch { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("aaaa"));
        let _ = std::fs::remove_file(&path);
    }

    /// The canonical 4-chunk partition the merge-verify tests pretend to run: one
    /// input, trials 0..32 in 8-trial chunks, one judge category.
    fn partition() -> Vec<TrialChunk> {
        (0..4)
            .map(|index| TrialChunk {
                index,
                input: 0,
                start: index * 8,
                len: 8,
            })
            .collect()
    }

    #[test]
    fn merge_verify_accepts_a_faithful_record() {
        let chunks = partition();
        record(2, 8).verify_against(&chunks, 1).unwrap();
    }

    #[test]
    fn merge_verify_refuses_a_wrong_chunk_index() {
        let chunks = partition();
        // Index past the partition: nothing to merge it into.
        let err = record(9, 8).verify_against(&chunks, 1).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("geometry"), "{err}");

        // Index inside the partition but geometry lifted from another chunk — a record
        // relabeled to fill a different slot must not pass.
        let mut forged = record(1, 8);
        forged.chunk.index = 3;
        let err = forged.verify_against(&chunks, 1).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn merge_verify_refuses_a_truncated_tally() {
        let chunks = partition();
        // Arity: the tally must carry one counter per judge category.
        let mut truncated = record(1, 8);
        truncated.tally.sdc_counts.clear();
        let err = truncated.verify_against(&chunks, 1).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("SDC counters"), "{err}");

        // Trial count: a tally over fewer trials than the chunk spans is partial work
        // masquerading as a completed chunk.
        let mut short = record(1, 8);
        short.tally.trials = 5;
        let err = short.verify_against(&chunks, 1).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("trials"), "{err}");
    }

    #[test]
    fn merge_verify_rejections_never_reach_the_store() {
        // The coordinator's contract: verify first, append second. Model it directly —
        // a record that fails verification must leave the durable file byte-identical.
        let path = tmp("merge-verify");
        let _ = std::fs::remove_file(&path);
        let chunks = partition();
        let mut store = CheckpointStore::open(&path, "f00d").unwrap();
        store.append(&record(0, 8)).unwrap();
        let bytes_before = std::fs::metadata(&path).unwrap().len();

        let mut forged = record(1, 8);
        forged.tally.sdc_counts.clear();
        assert!(forged.verify_against(&chunks, 1).is_err());
        // (the caller refuses to append on a verify error; nothing to do here)

        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes_before);
        drop(store);
        let store = CheckpointStore::open(&path, "f00d").unwrap();
        assert_eq!(store.len(), 1, "only the faithful record is durable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_and_interior_corruption_are_refused() {
        let path = tmp("version");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\"version\":99,\"fingerprint\":\"aaaa\"}\n").unwrap();
        let err = CheckpointStore::open(&path, "aaaa").unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");

        // Interior garbage (a non-final unreadable line) is corruption, not a torn tail.
        std::fs::write(
            &path,
            format!(
                "{}\ngarbage-line\n{}\n",
                "{\"version\":1,\"fingerprint\":\"aaaa\"}",
                serde_json::to_string(&record(0, 4)).unwrap()
            ),
        )
        .unwrap();
        let err = CheckpointStore::open(&path, "aaaa").unwrap_err();
        assert!(matches!(err, ServeError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
