//! Campaign identity: a stable 128-bit fingerprint over everything that determines the
//! counts.
//!
//! A checkpoint file may only be resumed by *the same campaign* — same graph (weights
//! included), same inputs, same fault model, seed, backend, judge and chunk geometry.
//! Rather than trusting the caller, the checkpoint store records a fingerprint computed
//! over the canonical JSON serialization of all of those, and a resuming driver refuses
//! a file whose fingerprint differs. The service also uses the fingerprint hex as the
//! campaign's wire-level id, which makes re-submitting a campaign to a restarted server
//! idempotent: identical spec → identical id → the existing checkpoint is picked up.
//!
//! The hash is two independent 64-bit FNV-1a passes (different offset bases) over the
//! same payload, concatenated to 32 hex digits. FNV is not cryptographic — the threat
//! model is accidental mixups (edited config, different seed, wrong model file), not an
//! adversary forging checkpoints.

use crate::ServeError;
use ranger_inject::{CampaignConfig, InjectionTarget};
use ranger_tensor::Tensor;

/// Bumped when the fingerprint payload layout changes, so stale checkpoints are rejected
/// as mismatched rather than misread.
const FINGERPRINT_VERSION: u32 = 1;

/// The canonical FNV-1a 64-bit offset basis.
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent offset basis for the high half of the fingerprint.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the fingerprint of a campaign: 32 hex digits over the graph, target, inputs,
/// configuration, judge categories and chunk geometry.
///
/// `chunk_len` is part of the identity because the checkpoint records whole chunks: a
/// file of 8-trial records cannot resume a 5-trial-chunk campaign. The configuration is
/// hashed wholesale — `workers` included, since the default partition is derived from it.
///
/// # Errors
///
/// Returns [`ServeError::Json`] if serialization of the payload fails.
pub fn campaign_fingerprint(
    target: &InjectionTarget<'_>,
    inputs: &[Tensor],
    config: &CampaignConfig,
    categories: &[String],
    chunk_len: usize,
) -> Result<String, ServeError> {
    // The payload is the field-by-field JSON of everything that determines the counts,
    // joined with an unambiguous separator (JSON strings cannot contain a raw newline).
    let payload = [
        format!("fingerprint-v{FINGERPRINT_VERSION}"),
        serde_json::to_string(target.graph)?,
        serde_json::to_string(target.input_name)?,
        serde_json::to_string(&target.output)?,
        serde_json::to_string(target.excluded)?,
        serde_json::to_string(inputs)?,
        serde_json::to_string(config)?,
        serde_json::to_string(categories)?,
        chunk_len.to_string(),
    ]
    .join("\n");
    let bytes = payload.as_bytes();
    Ok(format!(
        "{:016x}{:016x}",
        fnv1a(bytes, FNV_OFFSET_A),
        fnv1a(bytes, FNV_OFFSET_B)
    ))
}

fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut hash = offset;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Graph, GraphBuilder, NodeId};

    fn toy() -> (Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 6, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 6, 2, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    fn fingerprint_of(graph: &Graph, output: NodeId, config: &CampaignConfig) -> String {
        let target = InjectionTarget {
            graph,
            input_name: "x",
            output,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 4])];
        campaign_fingerprint(&target, &inputs, config, &["top-1".to_string()], 8).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_well_formed() {
        let (graph, output) = toy();
        let config = CampaignConfig::default();
        let a = fingerprint_of(&graph, output, &config);
        let b = fingerprint_of(&graph, output, &config);
        assert_eq!(a, b, "same campaign must fingerprint identically");
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_distinguishes_seed_config_and_weights() {
        let (graph, output) = toy();
        let base = CampaignConfig::default();
        let reference = fingerprint_of(&graph, output, &base);

        let mut reseeded = base;
        reseeded.seed = base.seed + 1;
        assert_ne!(reference, fingerprint_of(&graph, output, &reseeded));

        let mut retrialed = base;
        retrialed.trials += 1;
        assert_ne!(reference, fingerprint_of(&graph, output, &retrialed));

        let mut reworked = base;
        reworked.workers += 1;
        assert_ne!(
            reference,
            fingerprint_of(&graph, output, &reworked),
            "workers shape the default partition, so they are part of the identity"
        );

        // Different weights (different build seed) — different campaign.
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 6, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 6, 2, &mut rng);
        let probs = b.softmax(y);
        let other = b.into_graph();
        assert_ne!(reference, fingerprint_of(&other, probs, &base));
    }

    #[test]
    fn fingerprint_distinguishes_chunk_geometry() {
        let (graph, output) = toy();
        let config = CampaignConfig::default();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 4])];
        let categories = vec!["top-1".to_string()];
        let a = campaign_fingerprint(&target, &inputs, &config, &categories, 8).unwrap();
        let b = campaign_fingerprint(&target, &inputs, &config, &categories, 5).unwrap();
        assert_ne!(a, b);
    }
}
