//! The blocking client the CLI (and the tests) use to talk to a campaign server.
//!
//! One request per connection, mirroring the server's framing: connect, write one JSON
//! line, read the response line(s). [`Client::stream`] keeps its connection open and
//! delivers each event to a callback until the server sends the terminal
//! [`Response::End`] line.

use crate::checkpoint::ChunkRecord;
use crate::lease::LeaseGrant;
use crate::protocol::{Request, Response, StatusInfo};
use crate::sink::CampaignEvent;
use crate::spec::CampaignSpec;
use crate::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Summary returned by a successful submit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    /// The campaign id (its fingerprint hex) — pass to status/stream/cancel.
    pub id: String,
    /// Work units in the campaign's partition.
    pub total_chunks: usize,
    /// Work units recovered from an earlier run's checkpoint.
    pub resumed_chunks: usize,
}

/// What a claim attempt came back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// A lease was granted over a chunk range.
    Granted(LeaseGrant),
    /// No chunk is free right now. While `state` is `"running"` the worker should
    /// retry after `retry_ms`; any other state is terminal for the worker.
    NoWork {
        /// The campaign's lifecycle state label.
        state: String,
        /// Suggested delay before the next claim attempt.
        retry_ms: u64,
    },
}

/// A blocking campaign-service client addressing one server.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (e.g. `127.0.0.1:7171`). No connection is made
    /// until a request method is called.
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// Submits (or resumes) a campaign.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] if the server reports an error or answers out
    /// of protocol, and I/O / JSON errors for transport failures.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<Submitted, ServeError> {
        match self.round_trip(&Request::Submit { spec: spec.clone() })? {
            (
                Response::Submitted {
                    id,
                    total_chunks,
                    resumed_chunks,
                },
                _,
            ) => Ok(Submitted {
                id,
                total_chunks,
                resumed_chunks,
            }),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Submits (or resumes) a campaign for **coordination only**: the server leases
    /// chunk ranges to worker hosts and merges their records instead of executing the
    /// campaign itself. Pair with [`Client::claim`]/[`Client::push`] loops on the
    /// workers (the CLI's `work` command).
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn submit_remote(&self, spec: &CampaignSpec) -> Result<Submitted, ServeError> {
        match self.round_trip(&Request::SubmitRemote { spec: spec.clone() })? {
            (
                Response::Submitted {
                    id,
                    total_chunks,
                    resumed_chunks,
                },
                _,
            ) => Ok(Submitted {
                id,
                total_chunks,
                resumed_chunks,
            }),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Fetches the spec of a coordinated campaign, so a joining worker can materialize
    /// the identical campaign locally and verify its fingerprint.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn spec(&self, id: &str) -> Result<CampaignSpec, ServeError> {
        match self.round_trip(&Request::Spec { id: id.to_string() })? {
            (Response::Spec { spec }, _) => Ok(spec),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Claims an exclusive lease over the next free contiguous chunk range (up to
    /// `max_chunks` chunks, valid for `ttl_ms` without renewal).
    ///
    /// # Errors
    ///
    /// [`ServeError::Lease`] carries the coordinator's typed refusal; otherwise see
    /// [`Client::submit`].
    pub fn claim(
        &self,
        id: &str,
        worker: &str,
        ttl_ms: u64,
        max_chunks: usize,
    ) -> Result<ClaimOutcome, ServeError> {
        self.claim_request(Request::Claim {
            id: id.to_string(),
            worker: worker.to_string(),
            ttl_ms,
            max_chunks,
            range: None,
        })
    }

    /// Claims an explicit `[start, end)` chunk range.
    ///
    /// # Errors
    ///
    /// See [`Client::claim`]; overlap with a live lease or a completed chunk comes
    /// back as [`ServeError::Lease`].
    pub fn claim_range(
        &self,
        id: &str,
        worker: &str,
        ttl_ms: u64,
        start: usize,
        end: usize,
    ) -> Result<ClaimOutcome, ServeError> {
        self.claim_request(Request::Claim {
            id: id.to_string(),
            worker: worker.to_string(),
            ttl_ms,
            max_chunks: end.saturating_sub(start),
            range: Some((start, end)),
        })
    }

    fn claim_request(&self, request: Request) -> Result<ClaimOutcome, ServeError> {
        match self.round_trip(&request)? {
            (Response::Leased { grant }, _) => Ok(ClaimOutcome::Granted(grant)),
            (Response::NoWork { state, retry_ms }, _) => {
                Ok(ClaimOutcome::NoWork { state, retry_ms })
            }
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Extends a live lease's deadline, returning the refreshed grant.
    ///
    /// # Errors
    ///
    /// See [`Client::claim`].
    pub fn renew(&self, id: &str, token: u64, ttl_ms: u64) -> Result<LeaseGrant, ServeError> {
        match self.round_trip(&Request::Renew {
            id: id.to_string(),
            token,
            ttl_ms,
        })? {
            (Response::Leased { grant }, _) => Ok(grant),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Gives up a live lease, freeing its unfinished chunks for other workers.
    ///
    /// # Errors
    ///
    /// See [`Client::claim`].
    pub fn release(&self, id: &str, token: u64) -> Result<(), ServeError> {
        match self.round_trip(&Request::Release {
            id: id.to_string(),
            token,
        })? {
            (Response::Ok, _) => Ok(()),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Ships one completed-chunk record to the coordinator, which merge-verifies it,
    /// appends it durably and renews the lease.
    ///
    /// # Errors
    ///
    /// See [`Client::claim`]; a rejected record surfaces the coordinator's error
    /// message as [`ServeError::Protocol`] (corruption) or [`ServeError::Lease`].
    pub fn push(&self, id: &str, token: u64, record: &ChunkRecord) -> Result<(), ServeError> {
        match self.round_trip(&Request::Push {
            id: id.to_string(),
            token,
            record: record.clone(),
        })? {
            (Response::Ok, _) => Ok(()),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Fetches a campaign's progress summary.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn status(&self, id: &str) -> Result<StatusInfo, ServeError> {
        match self.round_trip(&Request::Status { id: id.to_string() })? {
            (Response::Status(info), _) => Ok(info),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Follows a campaign's event stream from the beginning, invoking `on_event` for
    /// every event, and returns the terminal state string once the stream ends
    /// (`"done"`, `"cancelled"` or `"failed: <message>"`).
    ///
    /// # Errors
    ///
    /// See [`Client::submit`]; additionally fails if the stream ends without a terminal
    /// line (server died mid-stream).
    pub fn stream(
        &self,
        id: &str,
        mut on_event: impl FnMut(&CampaignEvent),
    ) -> Result<String, ServeError> {
        let (first, mut reader) = self.round_trip(&Request::Stream { id: id.to_string() })?;
        let mut response = first;
        loop {
            match response {
                Response::Event(event) => on_event(&event),
                Response::End { state } => return Ok(state),
                Response::Error { message } => return Err(ServeError::Protocol(message)),
                other => return Err(unexpected(other)),
            }
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(ServeError::Protocol(
                    "stream ended without a terminal state line".to_string(),
                ));
            }
            response = serde_json::from_str(line.trim())?;
        }
    }

    /// Cooperatively cancels a running campaign.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn cancel(&self, id: &str) -> Result<(), ServeError> {
        match self.round_trip(&Request::Cancel { id: id.to_string() })? {
            (Response::Ok, _) => Ok(()),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Fetches the server's metrics-registry snapshot as its one-line JSON document
    /// (see `ranger_obs::MetricsSnapshot::to_json` for the schema).
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn metrics(&self) -> Result<String, ServeError> {
        match self.round_trip(&Request::Metrics)? {
            (Response::Metrics { snapshot }, _) => Ok(snapshot),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn shutdown(&self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            (Response::Ok, _) => Ok(()),
            (other, _) => Err(unexpected(other)),
        }
    }

    /// Opens a connection, sends one request line and reads the first response line.
    fn round_trip(
        &self,
        request: &Request,
    ) -> Result<(Response, BufReader<TcpStream>), ServeError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        let line = serde_json::to_string(request)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut response_line = String::new();
        if reader.read_line(&mut response_line)? == 0 {
            return Err(ServeError::Protocol(
                "server closed the connection without responding".to_string(),
            ));
        }
        let response: Response = serde_json::from_str(response_line.trim())?;
        match response {
            Response::Error { message } => Err(ServeError::Protocol(message)),
            Response::LeaseDenied { error } => Err(ServeError::Lease(error)),
            response => Ok((response, reader)),
        }
    }
}

fn unexpected(response: Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response: {response:?}"))
}
