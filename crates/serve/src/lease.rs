//! The lease table: exclusive, expiring ownership of chunk ranges.
//!
//! Multi-host sharding hands each worker host an exclusive lease over a contiguous
//! range of chunk indices in one campaign's canonical partition. A lease carries a
//! deadline; a worker renews it (explicitly, or implicitly with every record it pushes)
//! while it computes. A worker that dies simply stops renewing — after the deadline
//! passes the range is **re-leased** to whoever claims next, and any message the dead
//! worker's ghost later sends with its old token is refused.
//!
//! [`LeaseTable`] is deliberately pure bookkeeping: every method takes the current
//! [`Instant`] as a parameter, so the expiry rules are unit-testable with a fake clock
//! and the server stamps real wall time exactly once per request. Correctness never
//! depends on timing — per-(input, trial) RNG keying means a chunk executed twice (by a
//! slow worker and its replacement) produces the identical record, and the coordinator
//! accepts it exactly once.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Longest lease a worker may ask for (10 minutes). A dead worker holds its range
/// hostage for at most this long.
pub const MAX_LEASE_MS: u64 = 600_000;

/// A granted lease: the token authenticating the worker's right to a chunk range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// The capability token; every renew/release/push for this range must carry it.
    /// Tokens are never reused: a re-leased range gets a fresh token, so messages from
    /// the previous (expired) holder are distinguishable and refused.
    pub token: u64,
    /// The worker name the lease was granted to (diagnostic; the token is the secret).
    pub worker: String,
    /// First chunk index of the leased range.
    pub start: usize,
    /// One past the last chunk index of the leased range.
    pub end: usize,
    /// Milliseconds until the lease expires unless renewed.
    pub ttl_ms: u64,
}

impl LeaseGrant {
    /// Number of chunks in the leased range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the lease covers no chunks (never produced by a grant).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Why a lease operation was refused. Serializable so the server can send the precise
/// variant over the wire and tests can pin it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseError {
    /// The campaign id is not registered on this coordinator.
    UnknownCampaign {
        /// The id the request named.
        id: String,
    },
    /// The campaign exists but was submitted for local execution, not coordination.
    NotRemote {
        /// The id the request named.
        id: String,
    },
    /// The requested range overlaps a live lease held by another worker.
    AlreadyLeased {
        /// First chunk index of the conflicting live lease.
        start: usize,
        /// One past the last chunk index of the conflicting live lease.
        end: usize,
        /// The worker holding it.
        holder: String,
    },
    /// The requested range contains a chunk that is already durably completed.
    AlreadyComplete {
        /// The completed chunk index.
        index: usize,
    },
    /// The requested range falls outside the campaign's partition.
    OutOfRange {
        /// Requested range start.
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Chunks in the partition.
        total: usize,
    },
    /// The token named a lease that expired (its range may have been re-leased).
    Expired {
        /// The expired token.
        token: u64,
    },
    /// The token is unknown or was already released — the holder is stale.
    Stale {
        /// The stale token.
        token: u64,
    },
    /// The token is live but does not cover the chunk the request touched.
    NotLeased {
        /// The chunk index the request touched.
        index: usize,
        /// The token that does not cover it.
        token: u64,
    },
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::UnknownCampaign { id } => {
                write!(f, "no campaign with id {id} on this coordinator")
            }
            LeaseError::NotRemote { id } => write!(
                f,
                "campaign {id} runs locally on this server; it has no lease table \
                 (submit it with the remote flag to shard it)"
            ),
            LeaseError::AlreadyLeased { start, end, holder } => write!(
                f,
                "chunks {start}..{end} are leased to worker '{holder}' and the lease \
                 has not expired"
            ),
            LeaseError::AlreadyComplete { index } => {
                write!(f, "chunk {index} is already durably completed")
            }
            LeaseError::OutOfRange { start, end, total } => write!(
                f,
                "range {start}..{end} falls outside the campaign's {total}-chunk partition"
            ),
            LeaseError::Expired { token } => write!(
                f,
                "lease token {token} expired before this request arrived (the range may \
                 have been re-leased; claim again)"
            ),
            LeaseError::Stale { token } => write!(
                f,
                "lease token {token} is unknown or already released on this coordinator"
            ),
            LeaseError::NotLeased { index, token } => {
                write!(f, "lease token {token} does not cover chunk {index}")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// What a successful record push means for the lease that carried it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The lease is live; its deadline was renewed by the push.
    Live,
    /// The lease expired, but the chunk is neither completed nor re-leased, so the
    /// finished work is accepted anyway — late, but unclaimed by anyone else. This is
    /// what keeps aggressively short deadlines from livelocking on slow chunks.
    LateUnclaimed,
}

/// One live lease. The deadline lives server-side only; the wire carries TTLs.
#[derive(Debug, Clone)]
struct LeaseEntry {
    token: u64,
    worker: String,
    start: usize,
    end: usize,
    deadline: Instant,
    /// The granted TTL, so implicit renewals (pushes) extend by the same leash.
    ttl: Duration,
}

/// Why a token is no longer live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Retired {
    Expired,
    Released,
}

/// Lease state for one campaign's chunk space: which chunks are done, which ranges are
/// out on loan, and which tokens are dead.
#[derive(Debug)]
pub struct LeaseTable {
    total: usize,
    completed: BTreeSet<usize>,
    leases: Vec<LeaseEntry>,
    retired: HashMap<u64, Retired>,
    next_token: u64,
}

/// Clamps a requested TTL into `1..=MAX_LEASE_MS` and converts it to a [`Duration`].
pub fn clamp_ttl(ttl_ms: u64) -> Duration {
    Duration::from_millis(ttl_ms.clamp(1, MAX_LEASE_MS))
}

impl LeaseTable {
    /// A table over `total` chunks, with `completed` already durable (resumed from a
    /// checkpoint) and therefore never claimable.
    pub fn new(total: usize, completed: impl IntoIterator<Item = usize>) -> Self {
        LeaseTable {
            total,
            completed: completed.into_iter().collect(),
            leases: Vec::new(),
            retired: HashMap::new(),
            next_token: 1,
        }
    }

    /// Chunks in the campaign's partition.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Chunks durably completed so far.
    pub fn completed(&self) -> usize {
        self.completed.len()
    }

    /// Live (unexpired as of the last sweep) leases outstanding.
    pub fn live_leases(&self) -> usize {
        self.leases.len()
    }

    /// Whether every chunk is durably completed.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.total
    }

    /// Reaps every lease whose deadline has passed, returning how many expired. Expired
    /// tokens are remembered so late messages from their holders are answered with
    /// [`LeaseError::Expired`] (or accepted as [`TouchOutcome::LateUnclaimed`] pushes)
    /// rather than a confusing unknown-token error.
    pub fn sweep(&mut self, now: Instant) -> usize {
        let mut expired = 0usize;
        self.leases.retain(|entry| {
            if now > entry.deadline {
                self.retired.insert(entry.token, Retired::Expired);
                expired += 1;
                false
            } else {
                true
            }
        });
        expired
    }

    /// Whether chunk `index` is free: not completed and not covered by a live lease.
    fn is_free(&self, index: usize) -> bool {
        !self.completed.contains(&index)
            && !self
                .leases
                .iter()
                .any(|entry| entry.start <= index && index < entry.end)
    }

    fn grant(
        &mut self,
        worker: &str,
        start: usize,
        end: usize,
        ttl_ms: u64,
        now: Instant,
    ) -> LeaseGrant {
        let token = self.next_token;
        self.next_token += 1;
        let ttl_ms = ttl_ms.clamp(1, MAX_LEASE_MS);
        let ttl = clamp_ttl(ttl_ms);
        self.leases.push(LeaseEntry {
            token,
            worker: worker.to_string(),
            start,
            end,
            deadline: now + ttl,
            ttl,
        });
        LeaseGrant {
            token,
            worker: worker.to_string(),
            start,
            end,
            ttl_ms,
        }
    }

    /// Claims the first contiguous free run of chunks, up to `max_chunks` long. Returns
    /// `None` when no chunk is free — either the campaign is complete or every pending
    /// chunk is out on a live lease (callers should re-poll after a while).
    ///
    /// Call [`LeaseTable::sweep`] first; a claim never evicts a live lease itself.
    pub fn claim(
        &mut self,
        worker: &str,
        max_chunks: usize,
        ttl_ms: u64,
        now: Instant,
    ) -> Option<LeaseGrant> {
        let max_chunks = max_chunks.max(1);
        let start = (0..self.total).find(|&index| self.is_free(index))?;
        let mut end = start + 1;
        while end < self.total && end - start < max_chunks && self.is_free(end) {
            end += 1;
        }
        Some(self.grant(worker, start, end, ttl_ms, now))
    }

    /// Claims an explicit `[start, end)` range, refusing if any chunk in it is
    /// completed, leased, or outside the partition.
    ///
    /// # Errors
    ///
    /// [`LeaseError::OutOfRange`], [`LeaseError::AlreadyComplete`] or
    /// [`LeaseError::AlreadyLeased`] (the conflicting live lease is named).
    pub fn claim_range(
        &mut self,
        worker: &str,
        start: usize,
        end: usize,
        ttl_ms: u64,
        now: Instant,
    ) -> Result<LeaseGrant, LeaseError> {
        if start >= end || end > self.total {
            return Err(LeaseError::OutOfRange {
                start,
                end,
                total: self.total,
            });
        }
        for index in start..end {
            if self.completed.contains(&index) {
                return Err(LeaseError::AlreadyComplete { index });
            }
            if let Some(entry) = self
                .leases
                .iter()
                .find(|entry| entry.start <= index && index < entry.end)
            {
                return Err(LeaseError::AlreadyLeased {
                    start: entry.start,
                    end: entry.end,
                    holder: entry.worker.clone(),
                });
            }
        }
        Ok(self.grant(worker, start, end, ttl_ms, now))
    }

    /// Extends a live lease's deadline by `ttl_ms` from `now`, returning the refreshed
    /// grant.
    ///
    /// # Errors
    ///
    /// [`LeaseError::Expired`] if the token's lease already expired (its range may be
    /// re-leased — the worker must claim afresh), [`LeaseError::Stale`] if the token is
    /// unknown or was released.
    pub fn renew(
        &mut self,
        token: u64,
        ttl_ms: u64,
        now: Instant,
    ) -> Result<LeaseGrant, LeaseError> {
        if let Some(entry) = self.leases.iter_mut().find(|entry| entry.token == token) {
            let ttl_ms = ttl_ms.clamp(1, MAX_LEASE_MS);
            entry.ttl = clamp_ttl(ttl_ms);
            entry.deadline = now + entry.ttl;
            return Ok(LeaseGrant {
                token: entry.token,
                worker: entry.worker.clone(),
                start: entry.start,
                end: entry.end,
                ttl_ms,
            });
        }
        Err(self.dead_token(token))
    }

    /// Releases a live lease, freeing its unfinished chunks for other workers.
    ///
    /// # Errors
    ///
    /// [`LeaseError::Expired`] or [`LeaseError::Stale`] exactly as [`LeaseTable::renew`]
    /// — in particular, a stale worker's late release of a range that expired (and was
    /// possibly re-leased) is refused rather than yanking the new holder's lease.
    pub fn release(&mut self, token: u64, _now: Instant) -> Result<(), LeaseError> {
        if let Some(position) = self.leases.iter().position(|entry| entry.token == token) {
            self.leases.swap_remove(position);
            self.retired.insert(token, Retired::Released);
            return Ok(());
        }
        Err(self.dead_token(token))
    }

    /// Validates that `token` may push a record for chunk `index`, renewing the lease's
    /// deadline by its own granted TTL on success (a push proves the worker is alive).
    ///
    /// # Errors
    ///
    /// [`LeaseError::NotLeased`] if the token is live but the chunk is outside its
    /// range, [`LeaseError::Stale`] if the token is dead and the chunk belongs to (or
    /// was re-leased to) someone else, or is unknown/released.
    pub fn touch(
        &mut self,
        token: u64,
        index: usize,
        now: Instant,
    ) -> Result<TouchOutcome, LeaseError> {
        if let Some(entry) = self.leases.iter_mut().find(|entry| entry.token == token) {
            if index < entry.start || index >= entry.end {
                return Err(LeaseError::NotLeased { index, token });
            }
            entry.deadline = now + entry.ttl;
            return Ok(TouchOutcome::Live);
        }
        match self.retired.get(&token) {
            Some(Retired::Expired) => {
                // The worker outlived its lease. If nobody else owns the chunk and it
                // is still pending, the finished work is as good as anyone's: accept.
                let reclaimed = self
                    .leases
                    .iter()
                    .any(|entry| entry.start <= index && index < entry.end);
                if reclaimed || self.completed.contains(&index) || index >= self.total {
                    Err(LeaseError::Stale { token })
                } else {
                    Ok(TouchOutcome::LateUnclaimed)
                }
            }
            Some(Retired::Released) | None => Err(LeaseError::Stale { token }),
        }
    }

    /// Marks chunk `index` durably completed (call after the record is fsync'd).
    pub fn complete(&mut self, index: usize) {
        self.completed.insert(index);
    }

    fn dead_token(&self, token: u64) -> LeaseError {
        match self.retired.get(&token) {
            Some(Retired::Expired) => LeaseError::Expired { token },
            Some(Retired::Released) | None => LeaseError::Stale { token },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn claim_hands_out_disjoint_contiguous_ranges() {
        let now = t0();
        let mut table = LeaseTable::new(10, []);
        let a = table.claim("a", 4, 1000, now).unwrap();
        assert_eq!((a.start, a.end), (0, 4));
        let b = table.claim("b", 4, 1000, now).unwrap();
        assert_eq!((b.start, b.end), (4, 8));
        let c = table.claim("c", 4, 1000, now).unwrap();
        assert_eq!((c.start, c.end), (8, 10));
        assert!(table.claim("d", 4, 1000, now).is_none(), "nothing left");
        assert_ne!(a.token, b.token);
    }

    #[test]
    fn completed_chunks_are_never_claimable_and_break_contiguity() {
        let now = t0();
        let mut table = LeaseTable::new(6, [0, 3]);
        let a = table.claim("a", 8, 1000, now).unwrap();
        assert_eq!((a.start, a.end), (1, 3), "stops at the completed chunk");
        let b = table.claim("b", 8, 1000, now).unwrap();
        assert_eq!((b.start, b.end), (4, 6));
    }

    #[test]
    fn double_claim_of_a_live_range_is_refused() {
        let now = t0();
        let mut table = LeaseTable::new(8, []);
        let a = table.claim_range("a", 0, 4, 1000, now).unwrap();
        let err = table.claim_range("b", 2, 6, 1000, now).unwrap_err();
        assert_eq!(
            err,
            LeaseError::AlreadyLeased {
                start: 0,
                end: 4,
                holder: "a".to_string()
            }
        );
        // Releasing frees the range for a fresh claim under a fresh token.
        table.release(a.token, now).unwrap();
        let b = table.claim_range("b", 2, 6, 1000, now).unwrap();
        assert_ne!(b.token, a.token);
    }

    #[test]
    fn expiry_reaps_leases_and_old_tokens_are_refused() {
        let now = t0();
        let mut table = LeaseTable::new(8, []);
        let a = table.claim("a", 8, 100, now).unwrap();
        assert_eq!(table.sweep(now + Duration::from_millis(99)), 0);
        assert_eq!(table.live_leases(), 1);
        let later = now + Duration::from_millis(101);
        assert_eq!(table.sweep(later), 1);
        assert_eq!(table.live_leases(), 0);

        // The range is re-leasable; the old token is now answered with Expired.
        let b = table.claim("b", 8, 100, later).unwrap();
        assert_eq!((b.start, b.end), (0, 8));
        assert_eq!(
            table.renew(a.token, 100, later),
            Err(LeaseError::Expired { token: a.token })
        );
        assert_eq!(
            table.release(a.token, later),
            Err(LeaseError::Expired { token: a.token })
        );
        // A push for a chunk now owned by `b` is stale, not silently merged.
        assert_eq!(
            table.touch(a.token, 0, later),
            Err(LeaseError::Stale { token: a.token })
        );
    }

    #[test]
    fn renew_extends_the_deadline() {
        let now = t0();
        let mut table = LeaseTable::new(4, []);
        let a = table.claim("a", 4, 100, now).unwrap();
        let mid = now + Duration::from_millis(80);
        table.renew(a.token, 100, mid).unwrap();
        // 120ms after claim but only 40ms after renew: still live.
        assert_eq!(table.sweep(now + Duration::from_millis(120)), 0);
        assert_eq!(table.sweep(mid + Duration::from_millis(101)), 1);
    }

    #[test]
    fn touch_renews_and_polices_range_membership() {
        let now = t0();
        let mut table = LeaseTable::new(8, []);
        let a = table.claim_range("a", 0, 4, 100, now).unwrap();
        assert_eq!(table.touch(a.token, 2, now), Ok(TouchOutcome::Live));
        assert_eq!(
            table.touch(a.token, 5, now),
            Err(LeaseError::NotLeased {
                index: 5,
                token: a.token
            })
        );
        assert_eq!(
            table.touch(999, 2, now),
            Err(LeaseError::Stale { token: 999 })
        );
    }

    #[test]
    fn late_push_from_an_expired_lease_is_accepted_only_while_unclaimed() {
        let now = t0();
        let mut table = LeaseTable::new(4, []);
        let a = table.claim("a", 4, 50, now).unwrap();
        let later = now + Duration::from_millis(60);
        table.sweep(later);
        // Nobody re-claimed chunk 1 yet: the late result is accepted.
        assert_eq!(
            table.touch(a.token, 1, later),
            Ok(TouchOutcome::LateUnclaimed)
        );
        table.complete(1);
        // Completed now — a retry of the same push is stale at the table level (the
        // coordinator answers duplicates idempotently before consulting the table).
        assert_eq!(
            table.touch(a.token, 1, later),
            Err(LeaseError::Stale { token: a.token })
        );
        // Chunk 2 re-leased to b: a's late push for it is refused.
        let _b = table.claim_range("b", 2, 3, 50, later).unwrap();
        assert_eq!(
            table.touch(a.token, 2, later),
            Err(LeaseError::Stale { token: a.token })
        );
    }

    #[test]
    fn released_tokens_stay_dead() {
        let now = t0();
        let mut table = LeaseTable::new(4, []);
        let a = table.claim("a", 4, 100, now).unwrap();
        table.release(a.token, now).unwrap();
        assert_eq!(
            table.release(a.token, now),
            Err(LeaseError::Stale { token: a.token })
        );
        assert_eq!(
            table.renew(a.token, 100, now),
            Err(LeaseError::Stale { token: a.token })
        );
    }

    #[test]
    fn lease_errors_and_grants_round_trip_through_json() {
        let grant = LeaseGrant {
            token: 7,
            worker: "host-1".to_string(),
            start: 3,
            end: 9,
            ttl_ms: 1500,
        };
        let line = serde_json::to_string(&grant).unwrap();
        let back: LeaseGrant = serde_json::from_str(&line).unwrap();
        assert_eq!(back, grant);

        let errors = vec![
            LeaseError::UnknownCampaign { id: "ff".into() },
            LeaseError::NotRemote { id: "ff".into() },
            LeaseError::AlreadyLeased {
                start: 0,
                end: 4,
                holder: "a".into(),
            },
            LeaseError::AlreadyComplete { index: 2 },
            LeaseError::OutOfRange {
                start: 9,
                end: 12,
                total: 10,
            },
            LeaseError::Expired { token: 3 },
            LeaseError::Stale { token: 4 },
            LeaseError::NotLeased { index: 1, token: 5 },
        ];
        for error in errors {
            let line = serde_json::to_string(&error).unwrap();
            let back: LeaseError = serde_json::from_str(&line).unwrap();
            assert_eq!(back, error);
        }
    }
}
