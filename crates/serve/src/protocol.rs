//! The line-delimited JSON wire protocol.
//!
//! Every connection carries exactly one request: the client writes one JSON line, the
//! server answers with one JSON [`Response`] line — except for [`Request::Stream`],
//! where the server writes a [`Response::Event`] line per campaign event and closes
//! with [`Response::End`]. One-request-per-connection keeps framing trivial (a
//! `BufRead::read_line` on each side) and makes the server trivially robust to clients
//! vanishing mid-conversation.
//!
//! Campaign ids are [campaign fingerprints](crate::fingerprint::campaign_fingerprint),
//! so submitting the same spec twice — or to a restarted server — addresses the same
//! campaign and resumes its checkpoint instead of starting over.

use crate::sink::CampaignEvent;
use crate::spec::CampaignSpec;
use serde::{Deserialize, Serialize};

/// Version of the wire protocol; bumped on incompatible change.
pub const PROTOCOL_VERSION: u32 = 1;

/// A client request, one JSON line per connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign (or resume it, if its checkpoint already exists).
    Submit {
        /// The complete campaign description.
        spec: CampaignSpec,
    },
    /// Ask for a campaign's current progress.
    Status {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Follow a campaign's event stream from the beginning until it ends.
    Stream {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Cooperatively stop a running campaign (its checkpoint survives for resumption).
    Cancel {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Ask for a snapshot of the server's metrics registry.
    Metrics,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// Progress summary returned by [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusInfo {
    /// The campaign id.
    pub id: String,
    /// `"running"`, `"done"`, `"cancelled"` or `"failed: <message>"`.
    pub state: String,
    /// Judge categories, in reporting order (empty until the golden pass finishes).
    pub categories: Vec<String>,
    /// Per-category SDC counts tallied so far.
    pub sdc_counts: Vec<u64>,
    /// Trials tallied so far.
    pub trials_done: u64,
    /// Trials the campaign will tally in total.
    pub trials_total: u64,
    /// Work units emitted so far (resumed units included).
    pub done_chunks: usize,
    /// Work units in the campaign's partition.
    pub total_chunks: usize,
    /// Work units replayed from the checkpoint instead of executed.
    pub resumed_chunks: usize,
    /// Freshly executed trials per wall-clock second since the campaign started
    /// (resumed trials excluded; `0.0` until the first executed chunk lands).
    pub trials_per_sec: f64,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A campaign was accepted (or re-addressed): its id and partition summary.
    Submitted {
        /// The campaign id — the campaign's fingerprint hex.
        id: String,
        /// Work units in the campaign's partition.
        total_chunks: usize,
        /// Work units already completed by an earlier run of this campaign.
        resumed_chunks: usize,
    },
    /// Progress of a known campaign.
    Status(StatusInfo),
    /// One campaign event on a stream connection.
    Event(CampaignEvent),
    /// End of a stream: the campaign's terminal state (`"done"`, `"cancelled"` or
    /// `"failed: <message>"`).
    End {
        /// The terminal state string.
        state: String,
    },
    /// A snapshot of the server's metrics registry, as the one-line JSON document
    /// produced by `ranger_obs::MetricsSnapshot::to_json` (kept as an opaque string so
    /// the wire format never constrains the registry's contents).
    Metrics {
        /// The snapshot JSON document.
        snapshot: String,
    },
    /// The request was understood and performed; nothing further to report.
    Ok,
    /// The request failed; the message says why.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use ranger_inject::CampaignConfig;

    #[test]
    fn requests_round_trip_through_json_lines() {
        let requests = vec![
            Request::Submit {
                spec: CampaignSpec {
                    model: ModelSpec::Kind {
                        name: "lenet".to_string(),
                    },
                    inputs: 2,
                    config: CampaignConfig::default(),
                },
            },
            Request::Status {
                id: "abc123".to_string(),
            },
            Request::Stream {
                id: "abc123".to_string(),
            },
            Request::Cancel {
                id: "abc123".to_string(),
            },
            Request::Metrics,
            Request::Shutdown,
        ];
        for request in requests {
            let line = serde_json::to_string(&request).unwrap();
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip_through_json_lines() {
        let responses = vec![
            Response::Submitted {
                id: "abc".to_string(),
                total_chunks: 10,
                resumed_chunks: 3,
            },
            Response::Status(StatusInfo {
                id: "abc".to_string(),
                state: "running".to_string(),
                categories: vec!["top-1".to_string()],
                sdc_counts: vec![4],
                trials_done: 40,
                trials_total: 100,
                done_chunks: 5,
                total_chunks: 13,
                resumed_chunks: 2,
                trials_per_sec: 1250.5,
            }),
            Response::End {
                state: "done".to_string(),
            },
            Response::Metrics {
                snapshot: "{\"enabled\":true,\"counters\":{},\"gauges\":{},\"histograms\":{}}"
                    .to_string(),
            },
            Response::Ok,
            Response::Error {
                message: "no such campaign".to_string(),
            },
        ];
        for response in responses {
            let line = serde_json::to_string(&response).unwrap();
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, response);
        }
    }
}
