//! The line-delimited JSON wire protocol.
//!
//! Every connection carries exactly one request: the client writes one JSON line, the
//! server answers with one JSON [`Response`] line — except for [`Request::Stream`],
//! where the server writes a [`Response::Event`] line per campaign event and closes
//! with [`Response::End`]. One-request-per-connection keeps framing trivial (a
//! `BufRead::read_line` on each side) and makes the server trivially robust to clients
//! vanishing mid-conversation.
//!
//! Campaign ids are [campaign fingerprints](crate::fingerprint::campaign_fingerprint),
//! so submitting the same spec twice — or to a restarted server — addresses the same
//! campaign and resumes its checkpoint instead of starting over.

use crate::checkpoint::ChunkRecord;
use crate::lease::{LeaseError, LeaseGrant};
use crate::sink::CampaignEvent;
use crate::spec::CampaignSpec;
use serde::{Deserialize, Serialize};

/// Version of the wire protocol; bumped on incompatible change.
/// Version 2 added the sharding surface: `SubmitRemote`, `Spec` and the lease
/// lifecycle (`Claim` / `Renew` / `Release` / `Push`).
pub const PROTOCOL_VERSION: u32 = 2;

/// A client request, one JSON line per connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign (or resume it, if its checkpoint already exists).
    Submit {
        /// The complete campaign description.
        spec: CampaignSpec,
    },
    /// Submit a campaign for **coordination only**: the server runs no forward passes
    /// itself — it leases chunk ranges to worker hosts (`Claim`), merge-verifies the
    /// records they `Push` back, and owns the durable checkpoint. Resubmitting the
    /// same spec re-addresses (or, after a restart, resumes) the same campaign.
    SubmitRemote {
        /// The complete campaign description.
        spec: CampaignSpec,
    },
    /// Fetch the spec of a coordinated campaign, so a joining worker can materialize
    /// the identical campaign and verify its fingerprint before claiming work.
    Spec {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Claim an exclusive lease over the next free contiguous chunk range (or an
    /// explicit range) of a coordinated campaign.
    Claim {
        /// The campaign id returned by submit.
        id: String,
        /// The claiming worker's name (diagnostic; the returned token is the secret).
        worker: String,
        /// Milliseconds the lease stays valid without a renewal or push.
        ttl_ms: u64,
        /// Most chunks the worker wants in one lease.
        max_chunks: usize,
        /// An explicit `(start, end)` chunk range to claim instead of the next free
        /// run (used by tests and schedulers that pre-partition the chunk space).
        range: Option<(usize, usize)>,
    },
    /// Extend a live lease's deadline.
    Renew {
        /// The campaign id the lease belongs to.
        id: String,
        /// The lease token from the grant.
        token: u64,
        /// Milliseconds the lease stays valid from now.
        ttl_ms: u64,
    },
    /// Give up a live lease, freeing its unfinished chunks for other workers.
    Release {
        /// The campaign id the lease belongs to.
        id: String,
        /// The lease token from the grant.
        token: u64,
    },
    /// Ship one completed-chunk record to the coordinator. The record is
    /// merge-verified against the campaign's canonical partition, durably appended,
    /// and the lease's deadline is renewed.
    Push {
        /// The campaign id the record belongs to.
        id: String,
        /// The lease token covering the record's chunk.
        token: u64,
        /// The completed chunk and its tally.
        record: ChunkRecord,
    },
    /// Ask for a campaign's current progress.
    Status {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Follow a campaign's event stream from the beginning until it ends.
    Stream {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Cooperatively stop a running campaign (its checkpoint survives for resumption).
    Cancel {
        /// The campaign id returned by submit.
        id: String,
    },
    /// Ask for a snapshot of the server's metrics registry.
    Metrics,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// Progress summary returned by [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusInfo {
    /// The campaign id.
    pub id: String,
    /// `"running"`, `"done"`, `"cancelled"` or `"failed: <message>"`.
    pub state: String,
    /// Judge categories, in reporting order (empty until the golden pass finishes).
    pub categories: Vec<String>,
    /// Per-category SDC counts tallied so far.
    pub sdc_counts: Vec<u64>,
    /// Trials tallied so far.
    pub trials_done: u64,
    /// Trials the campaign will tally in total.
    pub trials_total: u64,
    /// Work units emitted so far (resumed units included).
    pub done_chunks: usize,
    /// Work units in the campaign's partition.
    pub total_chunks: usize,
    /// Work units replayed from the checkpoint instead of executed.
    pub resumed_chunks: usize,
    /// Freshly executed trials per wall-clock second since the campaign started
    /// (resumed trials excluded; `0.0` until the first executed chunk lands).
    pub trials_per_sec: f64,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A campaign was accepted (or re-addressed): its id and partition summary.
    Submitted {
        /// The campaign id — the campaign's fingerprint hex.
        id: String,
        /// Work units in the campaign's partition.
        total_chunks: usize,
        /// Work units already completed by an earlier run of this campaign.
        resumed_chunks: usize,
    },
    /// Progress of a known campaign.
    Status(StatusInfo),
    /// One campaign event on a stream connection.
    Event(CampaignEvent),
    /// End of a stream: the campaign's terminal state (`"done"`, `"cancelled"` or
    /// `"failed: <message>"`).
    End {
        /// The terminal state string.
        state: String,
    },
    /// A snapshot of the server's metrics registry, as the one-line JSON document
    /// produced by `ranger_obs::MetricsSnapshot::to_json` (kept as an opaque string so
    /// the wire format never constrains the registry's contents).
    Metrics {
        /// The snapshot JSON document.
        snapshot: String,
    },
    /// The spec of a coordinated campaign, answering [`Request::Spec`].
    Spec {
        /// The campaign description, exactly as submitted.
        spec: CampaignSpec,
    },
    /// A lease was granted (or renewed): the worker's exclusive chunk range.
    Leased {
        /// The grant — token, range and TTL.
        grant: LeaseGrant,
    },
    /// No chunk is free to lease right now. `state` reports the campaign's lifecycle
    /// state: while `"running"`, everything pending is out on live leases and the
    /// worker should retry after `retry_ms`; any other state means the worker is done
    /// here.
    NoWork {
        /// The campaign's lifecycle state label.
        state: String,
        /// Suggested delay before the next claim attempt.
        retry_ms: u64,
    },
    /// A lease operation was refused; the precise, typed reason.
    LeaseDenied {
        /// Why the coordinator refused.
        error: LeaseError,
    },
    /// The request was understood and performed; nothing further to report.
    Ok,
    /// The request failed; the message says why.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use ranger_inject::CampaignConfig;

    #[test]
    fn requests_round_trip_through_json_lines() {
        let requests = vec![
            Request::Submit {
                spec: CampaignSpec {
                    model: ModelSpec::Kind {
                        name: "lenet".to_string(),
                    },
                    inputs: 2,
                    config: CampaignConfig::default(),
                },
            },
            Request::Status {
                id: "abc123".to_string(),
            },
            Request::Stream {
                id: "abc123".to_string(),
            },
            Request::Cancel {
                id: "abc123".to_string(),
            },
            Request::Metrics,
            Request::Shutdown,
            Request::SubmitRemote {
                spec: CampaignSpec {
                    model: ModelSpec::Kind {
                        name: "lenet".to_string(),
                    },
                    inputs: 2,
                    config: CampaignConfig::default(),
                },
            },
            Request::Spec {
                id: "abc123".to_string(),
            },
            Request::Claim {
                id: "abc123".to_string(),
                worker: "host-1".to_string(),
                ttl_ms: 30_000,
                max_chunks: 4,
                range: None,
            },
            Request::Claim {
                id: "abc123".to_string(),
                worker: "host-1".to_string(),
                ttl_ms: 30_000,
                max_chunks: 4,
                range: Some((3, 7)),
            },
            Request::Renew {
                id: "abc123".to_string(),
                token: 9,
                ttl_ms: 30_000,
            },
            Request::Release {
                id: "abc123".to_string(),
                token: 9,
            },
            Request::Push {
                id: "abc123".to_string(),
                token: 9,
                record: ChunkRecord {
                    chunk: ranger_inject::TrialChunk {
                        index: 3,
                        input: 1,
                        start: 8,
                        len: 4,
                    },
                    tally: ranger_inject::ChunkTally {
                        sdc_counts: vec![1],
                        trials: 4,
                        unactivated: 2,
                    },
                },
            },
        ];
        for request in requests {
            let line = serde_json::to_string(&request).unwrap();
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip_through_json_lines() {
        let responses = vec![
            Response::Submitted {
                id: "abc".to_string(),
                total_chunks: 10,
                resumed_chunks: 3,
            },
            Response::Status(StatusInfo {
                id: "abc".to_string(),
                state: "running".to_string(),
                categories: vec!["top-1".to_string()],
                sdc_counts: vec![4],
                trials_done: 40,
                trials_total: 100,
                done_chunks: 5,
                total_chunks: 13,
                resumed_chunks: 2,
                trials_per_sec: 1250.5,
            }),
            Response::End {
                state: "done".to_string(),
            },
            Response::Metrics {
                snapshot: "{\"enabled\":true,\"counters\":{},\"gauges\":{},\"histograms\":{}}"
                    .to_string(),
            },
            Response::Ok,
            Response::Error {
                message: "no such campaign".to_string(),
            },
            Response::Spec {
                spec: CampaignSpec {
                    model: ModelSpec::Kind {
                        name: "lenet".to_string(),
                    },
                    inputs: 2,
                    config: CampaignConfig::default(),
                },
            },
            Response::Leased {
                grant: LeaseGrant {
                    token: 9,
                    worker: "host-1".to_string(),
                    start: 3,
                    end: 7,
                    ttl_ms: 30_000,
                },
            },
            Response::NoWork {
                state: "running".to_string(),
                retry_ms: 250,
            },
            Response::LeaseDenied {
                error: LeaseError::AlreadyLeased {
                    start: 0,
                    end: 4,
                    holder: "host-2".to_string(),
                },
            },
        ];
        for response in responses {
            let line = serde_json::to_string(&response).unwrap();
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, response);
        }
    }
}
