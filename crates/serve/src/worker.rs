//! Worker hosts for sharded campaigns: claim, execute, push, repeat.
//!
//! Two entry points share the claim/execute/push discipline:
//!
//! * [`run_sharded`] — the in-process harness: one [`Coordinator`] behind a mutex,
//!   `hosts` threads playing worker hosts, each claiming chunk ranges and absorbing
//!   records directly. This is what the sharded-parity proptest drives, and what
//!   [`Pipeline::shard_run`](../../ranger_engine/struct.Pipeline.html) routes through
//!   — the full lease-lifecycle and merge-verify machinery with no sockets involved.
//! * [`work`] — the remote worker the CLI's `work` command runs: fetch the campaign
//!   spec from a coordinator over TCP, materialize it locally, verify the fingerprint
//!   matches (a worker must never compute against a different campaign than it
//!   claims chunks of), then loop claiming ranges, driving them through the existing
//!   [`PreparedCampaign`] chunk executor and pushing every record back. Each push
//!   renews the lease, so a worker stays leased as long as it makes progress; a
//!   worker that dies simply stops pushing and its range is re-leased after expiry.
//!
//! Correctness never depends on scheduling: fault plans are keyed by
//! `(input, trial)` index, so any interleaving of hosts, claims and re-leases merges
//! to bit-for-bit the single-host counts.

use crate::checkpoint::{CheckpointStore, ChunkRecord};
use crate::client::{ClaimOutcome, Client};
use crate::coordinator::Coordinator;
use crate::driver::DriveOutcome;
use crate::sink::{CampaignEvent, CampaignSink, SinkFlow};
use crate::ServeError;
use ranger_inject::{CampaignError, PreparedCampaign, TrialChunk};
use ranger_runtime::ThreadPool;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default lease TTL in milliseconds, read from `RANGER_LEASE_MS` (unset: 30 s).
/// Short values exercise the expiry paths — CI sweeps the serve suite with
/// `RANGER_LEASE_MS=50` so re-leasing and late-push acceptance run on every push.
pub fn default_lease_ms() -> u64 {
    std::env::var("RANGER_LEASE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(30_000)
}

/// Options for the in-process sharded runner.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Simulated worker hosts (threads), each claiming ranges independently.
    pub hosts: usize,
    /// Lease TTL each host claims with, in milliseconds.
    pub ttl_ms: u64,
    /// Most chunks a host takes per claim.
    pub claim_chunks: usize,
    /// Sleep between claim attempts when every pending chunk is leased elsewhere.
    pub poll_ms: u64,
}

impl ShardOptions {
    /// `hosts` worker hosts with the environment's lease TTL and small claims.
    pub fn hosts(hosts: usize) -> Self {
        ShardOptions {
            hosts: hosts.max(1),
            ttl_ms: default_lease_ms(),
            claim_chunks: 2,
            poll_ms: 5,
        }
    }
}

/// Options for a remote (TCP) worker.
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// This worker's name, echoed in grants and conflict errors.
    pub worker: String,
    /// Lease TTL to claim with, in milliseconds.
    pub ttl_ms: u64,
    /// Most chunks to take per claim.
    pub claim_chunks: usize,
    /// Floor on the wait between claim attempts while the campaign is running but
    /// fully leased out.
    pub poll_ms: u64,
}

impl Default for WorkOptions {
    fn default() -> Self {
        WorkOptions {
            worker: format!("worker-{}", std::process::id()),
            ttl_ms: default_lease_ms(),
            claim_chunks: 4,
            poll_ms: 50,
        }
    }
}

/// What a remote worker did, reported when its campaign reaches a terminal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkReport {
    /// The campaign id the worker served.
    pub id: String,
    /// Chunks this worker executed and successfully pushed.
    pub chunks_executed: usize,
    /// Trials inside those chunks.
    pub trials_executed: u64,
    /// The campaign's terminal state label (`"done"`, `"cancelled"`, …).
    pub final_state: String,
}

/// Progress notifications a remote worker emits (the CLI prints them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkEvent {
    /// A lease was granted over `start..end`.
    Claimed {
        /// First chunk index of the granted range.
        start: usize,
        /// One past the last chunk index.
        end: usize,
        /// The grant's token.
        token: u64,
    },
    /// One chunk was executed and durably accepted by the coordinator.
    Pushed {
        /// The chunk's index in the canonical partition.
        index: usize,
    },
    /// The lease was lost (expired and re-leased, or otherwise refused); the worker
    /// abandons the rest of the range and claims afresh.
    LeaseLost {
        /// The refused token.
        token: u64,
        /// The coordinator's reason.
        reason: String,
    },
    /// Nothing to claim while the campaign runs; the worker waits.
    Waiting {
        /// Milliseconds the worker will sleep.
        retry_ms: u64,
    },
}

// ---------------------------------------------------------------------------
// In-process sharding
// ---------------------------------------------------------------------------

/// The event relay between host threads (which complete chunks in arbitrary order
/// under the coordinator lock) and the caller's sink (which is not `Send` and runs on
/// the calling thread only).
struct Relay {
    queue: Mutex<VecDeque<CampaignEvent>>,
    changed: Condvar,
    cancel: AtomicBool,
    active: AtomicUsize,
}

/// The sink host threads hand the coordinator: events are queued for the caller's
/// sink, and a pending cancellation is reported back as [`SinkFlow::Stop`].
struct RelaySink<'a> {
    relay: &'a Relay,
}

impl CampaignSink for RelaySink<'_> {
    fn event(&mut self, event: &CampaignEvent) -> SinkFlow {
        {
            let mut queue = self.relay.queue.lock().expect("relay queue poisoned");
            queue.push_back(event.clone());
        }
        self.relay.changed.notify_all();
        if self.relay.cancel.load(Ordering::SeqCst) {
            SinkFlow::Stop
        } else {
            SinkFlow::Continue
        }
    }
}

/// Decrements the relay's active-host count however the host exits (a panicking host
/// must not hang the caller's drain loop).
struct HostGuard<'a>(&'a Relay);

impl Drop for HostGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.changed.notify_all();
    }
}

/// Runs a prepared campaign to completion by sharding its chunk space across
/// `options.hosts` in-process worker hosts, coordinated by the full lease + merge-verify
/// machinery (the same [`Coordinator`] the TCP server drives).
///
/// Events stream into `sink` in canonical chunk order, exactly like [`drive`]: the
/// merged result is bit-for-bit the single-host result, which the sharded-parity
/// proptest pins across (hosts × batch × backend). The sink returning
/// [`SinkFlow::Stop`] cancels the campaign cooperatively; completed chunks stay
/// durable in the store.
///
/// [`drive`]: crate::driver::drive
///
/// # Errors
///
/// Returns [`ServeError::Campaign`] if a chunk execution fails, or the coordinator's
/// error if a record cannot be durably absorbed.
pub fn run_sharded(
    prepared: &PreparedCampaign<'_>,
    store: CheckpointStore,
    options: &ShardOptions,
    sink: &mut dyn CampaignSink,
) -> Result<DriveOutcome, ServeError> {
    let fingerprint = store.fingerprint().to_string();
    let chunks: Vec<TrialChunk> = prepared.chunks().to_vec();
    let trials_total = (prepared.config().trials * prepared.num_inputs()) as u64;
    let coordinator = Mutex::new(Coordinator::new(
        store,
        chunks.clone(),
        prepared.categories().to_vec(),
        trials_total,
    )?);
    let hosts = options.hosts.max(1);
    let relay = Relay {
        queue: Mutex::new(VecDeque::new()),
        changed: Condvar::new(),
        cancel: AtomicBool::new(false),
        active: AtomicUsize::new(hosts),
    };
    // The first execution failure, kept by lowest chunk index so the reported error is
    // deterministic whatever the host interleaving was.
    let failure: Mutex<Option<(usize, ServeError)>> = Mutex::new(None);

    {
        let coordinator = &coordinator;
        let mut begin_sink = RelaySink { relay: &relay };
        coordinator
            .lock()
            .expect("coordinator lock poisoned")
            .begin(&mut begin_sink);
    }

    std::thread::scope(|scope| {
        for host in 0..hosts {
            let coordinator = &coordinator;
            let relay = &relay;
            let failure = &failure;
            let chunks = &chunks;
            let fingerprint = &fingerprint;
            scope.spawn(move || {
                let _guard = HostGuard(relay);
                let worker_name = format!("host-{host}");
                let mut values = prepared.buffers();
                loop {
                    if relay.cancel.load(Ordering::SeqCst) {
                        break;
                    }
                    let claimed = {
                        let mut coordinator =
                            coordinator.lock().expect("coordinator lock poisoned");
                        if coordinator.is_done() || coordinator.is_stopped() {
                            break;
                        }
                        coordinator.claim(
                            &worker_name,
                            options.claim_chunks,
                            options.ttl_ms,
                            Instant::now(),
                        )
                    };
                    let Some(grant) = claimed else {
                        // Everything pending is leased to another host (or the
                        // campaign just finished); re-check shortly.
                        std::thread::sleep(Duration::from_millis(options.poll_ms.max(1)));
                        continue;
                    };
                    for (index, &chunk) in
                        chunks.iter().enumerate().take(grant.end).skip(grant.start)
                    {
                        if relay.cancel.load(Ordering::SeqCst) {
                            break;
                        }
                        match prepared.run_chunk(&mut values, chunk) {
                            Ok(tally) => {
                                let record = ChunkRecord { chunk, tally };
                                let absorbed = {
                                    let mut coordinator =
                                        coordinator.lock().expect("coordinator lock poisoned");
                                    let mut sink = RelaySink { relay };
                                    coordinator.absorb(
                                        fingerprint,
                                        grant.token,
                                        record,
                                        Instant::now(),
                                        &mut sink,
                                    )
                                };
                                match absorbed {
                                    Ok(()) => {}
                                    Err(ServeError::Lease(_)) => {
                                        // The lease expired and someone else owns the
                                        // range now; abandon it and claim afresh.
                                        break;
                                    }
                                    Err(e) => {
                                        record_failure(failure, index, e);
                                        relay.cancel.store(true, Ordering::SeqCst);
                                        break;
                                    }
                                }
                            }
                            Err(error) => {
                                record_failure(
                                    failure,
                                    index,
                                    ServeError::Campaign(wrap_chunk_error(error, chunk)),
                                );
                                relay.cancel.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    let _ = coordinator
                        .lock()
                        .expect("coordinator lock poisoned")
                        .release(grant.token, Instant::now());
                }
            });
        }

        // The caller's thread drains relayed events into the (non-Send) sink while the
        // hosts run, translating a Stop into cooperative cancellation.
        loop {
            let batch: Vec<CampaignEvent> = {
                let mut queue = relay.queue.lock().expect("relay queue poisoned");
                while queue.is_empty() && relay.active.load(Ordering::SeqCst) > 0 {
                    let (guard, _timeout) = relay
                        .changed
                        .wait_timeout(queue, Duration::from_millis(25))
                        .expect("relay queue poisoned");
                    queue = guard;
                }
                queue.drain(..).collect()
            };
            for event in &batch {
                if sink.event(event) == SinkFlow::Stop {
                    relay.cancel.store(true, Ordering::SeqCst);
                }
            }
            if batch.is_empty() && relay.active.load(Ordering::SeqCst) == 0 {
                break;
            }
        }
    });

    prepared.publish_metrics();

    if let Some((_, error)) = failure.lock().expect("failure lock poisoned").take() {
        return Err(error);
    }
    let coordinator = coordinator.into_inner().expect("coordinator lock poisoned");
    if coordinator.is_done() && !coordinator.is_stopped() {
        Ok(DriveOutcome::Completed(coordinator.cumulative().clone()))
    } else {
        Ok(DriveOutcome::Stopped(coordinator.cumulative().clone()))
    }
}

fn record_failure(failure: &Mutex<Option<(usize, ServeError)>>, index: usize, error: ServeError) {
    let mut slot = failure.lock().expect("failure lock poisoned");
    let replace = slot.as_ref().is_none_or(|&(held, _)| index < held);
    if replace {
        *slot = Some((index, error));
    }
}

/// Attaches the failing chunk's coordinates to a bare execution error, matching the
/// local driver's reporting.
fn wrap_chunk_error(error: CampaignError, chunk: TrialChunk) -> CampaignError {
    CampaignError::Failures {
        first: Box::new(error),
        input: chunk.input,
        chunk: chunk.index,
        suppressed: 0,
    }
}

// ---------------------------------------------------------------------------
// Remote (TCP) worker
// ---------------------------------------------------------------------------

/// Joins a coordinated campaign as a worker host: fetches the spec from the
/// coordinator at `addr`, materializes it, verifies the fingerprint equals `id`, and
/// loops — claim a chunk range, execute it on a local [`ThreadPool`]
/// (`config.workers` wide), push every record back (each push renews the lease) —
/// until the campaign reaches a terminal state.
///
/// A lost lease (this worker stalled past its TTL and the range was re-leased) is not
/// an error: the worker abandons the range and claims fresh work. The coordinator
/// accepts each chunk exactly once, so duplicated execution never duplicates counts.
///
/// # Errors
///
/// Returns [`ServeError::FingerprintMismatch`] if the materialized campaign does not
/// fingerprint to `id` (worker and coordinator would disagree about the work),
/// [`ServeError::Campaign`] if chunk execution fails, and transport errors if the
/// coordinator becomes unreachable.
pub fn work(
    addr: &str,
    id: &str,
    options: &WorkOptions,
    mut on_event: impl FnMut(&WorkEvent),
) -> Result<WorkReport, ServeError> {
    let client = Client::new(addr);
    let spec = client.spec(id)?;
    let materialized = spec.materialize()?;
    let fingerprint = materialized.fingerprint()?;
    if fingerprint != id {
        return Err(ServeError::FingerprintMismatch {
            expected: id.to_string(),
            found: fingerprint,
        });
    }
    let target = materialized.target();
    let prepared = PreparedCampaign::new(
        &target,
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    )?;
    let chunks = prepared.chunks();
    let pool = ThreadPool::new(materialized.config.workers.max(1));

    let mut chunks_executed = 0usize;
    let mut trials_executed = 0u64;
    loop {
        let outcome = client.claim(id, &options.worker, options.ttl_ms, options.claim_chunks);
        let grant = match outcome {
            Ok(ClaimOutcome::Granted(grant)) => grant,
            Ok(ClaimOutcome::NoWork { state, retry_ms }) => {
                if state == "running" {
                    let wait = retry_ms.max(options.poll_ms);
                    on_event(&WorkEvent::Waiting { retry_ms: wait });
                    std::thread::sleep(Duration::from_millis(wait));
                    continue;
                }
                prepared.publish_metrics();
                return Ok(WorkReport {
                    id: id.to_string(),
                    chunks_executed,
                    trials_executed,
                    final_state: state,
                });
            }
            Err(e) => return Err(e),
        };
        on_event(&WorkEvent::Claimed {
            start: grant.start,
            end: grant.end,
            token: grant.token,
        });

        // Execute the range on the pool; the consumer (on this thread) pushes each
        // record as it completes, renewing the lease with every accepted push.
        let pending: Vec<TrialChunk> = (grant.start..grant.end)
            .map(|index| chunks[index])
            .collect();
        let abandon = AtomicBool::new(false);
        let mut push_error: Option<ServeError> = None;
        let mut lease_lost: Option<WorkEvent> = None;
        {
            let prepared = &prepared;
            let abandon = &abandon;
            let client = &client;
            let push_error = &mut push_error;
            let lease_lost = &mut lease_lost;
            let chunks_executed = &mut chunks_executed;
            let trials_executed = &mut trials_executed;
            let pending_ref = &pending;
            pool.run_with_consumer(
                |_worker| prepared.buffers(),
                pending.iter().map(|&chunk| {
                    move |values: &mut ranger_graph::exec::Values| {
                        if abandon.load(Ordering::SeqCst) {
                            return Ok(None);
                        }
                        prepared.run_chunk(values, chunk).map(Some)
                    }
                }),
                |task_index, result| {
                    let chunk = pending_ref[task_index];
                    match result {
                        Ok(None) => {}
                        Ok(Some(tally)) => {
                            let record = ChunkRecord { chunk, tally };
                            match client.push(id, grant.token, &record) {
                                Ok(()) => {
                                    *chunks_executed += 1;
                                    *trials_executed += record.tally.trials;
                                }
                                Err(ServeError::Lease(reason)) => {
                                    if lease_lost.is_none() {
                                        *lease_lost = Some(WorkEvent::LeaseLost {
                                            token: grant.token,
                                            reason: reason.to_string(),
                                        });
                                    }
                                    abandon.store(true, Ordering::SeqCst);
                                }
                                Err(e) => {
                                    if push_error.is_none() {
                                        *push_error = Some(e);
                                    }
                                    abandon.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                        Err(error) => {
                            if push_error.is_none() {
                                *push_error =
                                    Some(ServeError::Campaign(wrap_chunk_error(error, chunk)));
                            }
                            abandon.store(true, Ordering::SeqCst);
                        }
                    }
                },
            );
        }
        if let Some(e) = push_error {
            return Err(e);
        }
        if let Some(event) = &lease_lost {
            on_event(event);
        } else {
            for index in grant.start..grant.end {
                on_event(&WorkEvent::Pushed { index });
            }
        }
        // Hand the lease back; the range is done (or lost), either way this token is
        // finished. A refusal here just means the coordinator already reclaimed it.
        let _ = client.release(id, grant.token);
    }
}
