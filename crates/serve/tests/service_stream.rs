//! End-to-end service acceptance over a real TCP socket: a streaming client observes
//! monotonically increasing tallies whose final event is bit-for-bit the in-process
//! API's `CampaignResult`, and re-submitting a finished campaign replays it entirely
//! from its checkpoint.

use ranger_inject::{run_campaign, BackendKind, CampaignConfig, FaultModel};
use ranger_serve::{CampaignEvent, CampaignServer, CampaignSpec, Client, ModelSpec, ServeError};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ranger-serve-stream-{}-{name}", std::process::id()))
}

fn small_lenet_spec() -> CampaignSpec {
    CampaignSpec {
        model: ModelSpec::Kind {
            name: "lenet".to_string(),
        },
        inputs: 2,
        config: CampaignConfig {
            trials: 6,
            batch: 1,
            workers: 2,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed: 11,
            tile: 0,
        },
    }
}

#[test]
fn streamed_tallies_are_monotone_and_end_in_the_in_process_result() {
    let dir = tmp_dir("monotone");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = small_lenet_spec();

    // The ground truth: the same campaign through the in-process API.
    let materialized = spec.materialize().unwrap();
    let reference = run_campaign(
        &materialized.target(),
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    )
    .unwrap();

    let server = CampaignServer::bind("127.0.0.1:0", &dir).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());
    let client = Client::new(addr.to_string());

    let submitted = client.submit(&spec).unwrap();
    assert_eq!(submitted.id.len(), 32, "the campaign id is its fingerprint");
    assert_eq!(submitted.resumed_chunks, 0, "fresh campaign, fresh log");
    assert!(
        submitted.total_chunks > 1,
        "the partition must be non-trivial"
    );

    let mut events = Vec::new();
    let state = client
        .stream(&submitted.id, |event| events.push(event.clone()))
        .unwrap();
    assert_eq!(state, "done");

    // Shape: one GoldenDone, total_chunks ChunkDones in index order, one CampaignDone.
    assert!(
        matches!(events.first(), Some(CampaignEvent::GoldenDone { .. })),
        "the stream must open with GoldenDone, got {:?}",
        events.first()
    );
    let chunk_indices: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::ChunkDone { chunk, .. } => Some(chunk.index),
            _ => None,
        })
        .collect();
    assert_eq!(
        chunk_indices,
        (0..submitted.total_chunks).collect::<Vec<_>>(),
        "chunk events arrive in canonical order whatever the completion order was"
    );

    // Monotonicity: trials and every per-category SDC count never decrease.
    let mut last_trials = 0u64;
    let mut last_counts: Vec<u64> = Vec::new();
    for event in &events {
        assert!(
            event.trials_done() >= last_trials,
            "tallies must be monotone, {} after {last_trials}",
            event.trials_done()
        );
        last_trials = event.trials_done();
        if let CampaignEvent::ChunkDone { cumulative, .. } = event {
            if !last_counts.is_empty() {
                for (now, before) in cumulative.sdc_counts.iter().zip(&last_counts) {
                    assert!(now >= before, "SDC counts must be monotone");
                }
            }
            last_counts = cumulative.sdc_counts.clone();
        }
    }

    // The final event is bit-for-bit the in-process API's result.
    match events.last() {
        Some(CampaignEvent::CampaignDone { result }) => assert_eq!(result, &reference),
        other => panic!("stream must end with CampaignDone, got {other:?}"),
    }

    // Status agrees after completion.
    let status = client.status(&submitted.id).unwrap();
    assert_eq!(status.state, "done");
    assert_eq!(status.trials_done, reference.trials);
    assert_eq!(status.trials_total, reference.trials);
    assert_eq!(status.done_chunks, submitted.total_chunks);
    assert_eq!(status.sdc_counts, reference.sdc_counts);

    // Re-submitting the identical spec resumes: every chunk replays from the
    // checkpoint and the final result is identical.
    let resubmitted = client.submit(&spec).unwrap();
    assert_eq!(resubmitted.id, submitted.id, "same spec, same fingerprint");
    assert_eq!(resubmitted.resumed_chunks, submitted.total_chunks);
    let mut replay = Vec::new();
    let state = client
        .stream(&resubmitted.id, |event| replay.push(event.clone()))
        .unwrap();
    assert_eq!(state, "done");
    let all_resumed = replay
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::ChunkDone { resumed, .. } => Some(*resumed),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(all_resumed.len(), submitted.total_chunks);
    assert!(
        all_resumed.iter().all(|&r| r),
        "a finished campaign replays without re-running a single trial"
    );
    match replay.last() {
        Some(CampaignEvent::CampaignDone { result }) => assert_eq!(result, &reference),
        other => panic!("replay must end with CampaignDone, got {other:?}"),
    }

    // Unknown campaigns are named in the error.
    let err = client.status("deadbeef").unwrap_err();
    assert!(matches!(err, ServeError::Protocol(_)), "got {err:?}");
    assert!(err.to_string().contains("deadbeef"));

    client.shutdown().unwrap();
    server_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_stops_a_campaign_and_resubmit_completes_it_with_identical_counts() {
    let dir = tmp_dir("cancel");
    let _ = std::fs::remove_dir_all(&dir);
    let mut spec = small_lenet_spec();
    spec.config.trials = 12;
    spec.config.seed = 23;

    let materialized = spec.materialize().unwrap();
    let reference = run_campaign(
        &materialized.target(),
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    )
    .unwrap();

    let server = CampaignServer::bind("127.0.0.1:0", &dir).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());
    let client = Client::new(addr.to_string());

    let submitted = client.submit(&spec).unwrap();
    // Cancel immediately: whatever chunks were in flight are checkpointed, the rest
    // are skipped. The stream still terminates cleanly.
    client.cancel(&submitted.id).unwrap();
    let state = client.stream(&submitted.id, |_| {}).unwrap();
    assert!(
        state == "cancelled" || state == "done",
        "a cancelled campaign ends as cancelled (or done, if it outran the cancel): {state}"
    );

    // Re-submit until done: the service resumes from the checkpoint each time and the
    // final counts are exactly the uninterrupted in-process result.
    let mut last = Vec::new();
    for _ in 0..20 {
        let resubmitted = client.submit(&spec).unwrap();
        assert_eq!(resubmitted.id, submitted.id);
        last.clear();
        let state = client
            .stream(&resubmitted.id, |event| last.push(event.clone()))
            .unwrap();
        if state == "done" {
            break;
        }
    }
    match last.last() {
        Some(CampaignEvent::CampaignDone { result }) => assert_eq!(result, &reference),
        other => panic!("the resumed campaign must finish with CampaignDone, got {other:?}"),
    }

    client.shutdown().unwrap();
    server_thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
