//! Lease-lifecycle fault injection against the coordinator, on a fake clock.
//!
//! Every [`Coordinator`] method takes `now: Instant`, so these tests drive the full
//! dead-worker story deterministically — no sleeps, no wall-clock flake: a worker
//! claims a range and vanishes; after its TTL the range is observably re-leased to a
//! survivor; the survivor completes it; the merged counts equal the unsharded
//! reference exactly. Alongside, the refusal matrix is pinned variant-by-variant:
//! double-claims, stale releases and renewals of a re-leased range, pushes with dead
//! tokens, pushes addressed to the wrong campaign, and corrupt records — none of
//! which may leave a byte in the durable store.

use rand::{rngs::StdRng, SeedableRng};
use ranger_graph::{Graph, GraphBuilder, NodeId};
use ranger_inject::{
    run_campaign, CampaignConfig, ClassifierJudge, InjectionTarget, PreparedCampaign, SdcJudge,
};
use ranger_serve::{
    campaign_fingerprint, CheckpointStore, ChunkRecord, CollectSink, Coordinator, LeaseError,
    NullSink, ServeError,
};
use ranger_tensor::Tensor;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn toy_classifier(seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let h = b.dense(x, 6, 10, &mut rng);
    let h = b.relu(h);
    let y = b.dense(h, 10, 4, &mut rng);
    let probs = b.softmax(y);
    (b.into_graph(), probs)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranger-serve-lease-{}-{name}.jsonl",
        std::process::id()
    ))
}

/// A campaign small enough to hand-execute: 2 inputs × 8 trials in 4-trial chunks
/// gives 4 chunks. Returns everything a test needs to play coordinator and workers.
struct Rig<'a> {
    prepared: PreparedCampaign<'a>,
    reference: ranger_inject::CampaignResult,
    fingerprint: String,
    path: PathBuf,
}

fn target(graph: &Graph, probs: NodeId) -> InjectionTarget<'_> {
    InjectionTarget {
        graph,
        input_name: "x",
        output: probs,
        excluded: &[],
    }
}

fn rig<'a>(
    target: &'a InjectionTarget<'a>,
    inputs: &'a [Tensor],
    judge: &'a ClassifierJudge,
    name: &str,
) -> Rig<'a> {
    let config = CampaignConfig {
        trials: 8,
        batch: 1,
        workers: 1,
        seed: 99,
        tile: 0,
        ..CampaignConfig::default()
    };
    let reference = run_campaign(target, inputs, judge, &config).unwrap();
    let prepared = PreparedCampaign::with_chunk_len(target, inputs, judge, &config, 4).unwrap();
    let fingerprint =
        campaign_fingerprint(target, inputs, &config, &judge.categories(), 4).unwrap();
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    Rig {
        prepared,
        reference,
        fingerprint,
        path,
    }
}

fn coordinator(rig: &Rig<'_>) -> Coordinator {
    let store = CheckpointStore::open(&rig.path, &rig.fingerprint).unwrap();
    let trials_total = rig.reference.trials;
    Coordinator::new(
        store,
        rig.prepared.chunks().to_vec(),
        rig.prepared.categories().to_vec(),
        trials_total,
    )
    .unwrap()
}

/// Executes chunk `index` exactly as a worker host would and returns its record.
fn execute(rig: &Rig<'_>, index: usize) -> ChunkRecord {
    let chunk = rig.prepared.chunks()[index];
    let mut values = rig.prepared.buffers();
    let tally = rig.prepared.run_chunk(&mut values, chunk).unwrap();
    ChunkRecord { chunk, tally }
}

/// The tentpole lifecycle: a worker claims a range and dies; after the TTL the range
/// is re-leased to a survivor; the survivor finishes; the merged counts are exactly
/// the unsharded reference.
#[test]
fn a_dead_workers_range_is_re_leased_and_the_survivor_finishes_exactly() {
    let (graph, probs) = toy_classifier(7);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "dead-worker");
    let mut coord = coordinator(&rig);
    let total = coord.total_chunks();
    let t0 = Instant::now();
    let mut sink = CollectSink::new();
    coord.begin(&mut sink);

    // The doomed worker claims the first two chunks with a 1s TTL and vanishes.
    let doomed = coord.claim("doomed", 2, 1_000, t0).unwrap();
    assert_eq!((doomed.start, doomed.end), (0, 2));

    // A survivor claims the rest and completes it while the doomed lease is live.
    let survivor = coord.claim("survivor", total, 1_000, t0).unwrap();
    assert_eq!((survivor.start, survivor.end), (2, total));
    for index in survivor.start..survivor.end {
        let record = execute(&rig, index);
        coord
            .absorb(&rig.fingerprint, survivor.token, record, t0, &mut sink)
            .unwrap();
    }

    // Nothing else is free while the doomed lease is live...
    assert!(coord.claim("survivor", total, 1_000, t0).is_none());
    assert!(!coord.is_done());

    // ...but past the deadline the range is observably re-leased to the survivor,
    let after = t0 + Duration::from_millis(1_500);
    let release = coord.claim("survivor", total, 1_000, after).unwrap();
    assert_eq!((release.start, release.end), (0, 2));
    assert_ne!(
        release.token, doomed.token,
        "a re-lease mints a fresh token"
    );

    // ...who completes it, closing the campaign with the exact reference counts.
    for index in release.start..release.end {
        let record = execute(&rig, index);
        coord
            .absorb(&rig.fingerprint, release.token, record, after, &mut sink)
            .unwrap();
    }
    assert!(coord.is_done());
    assert_eq!(coord.cumulative(), &rig.reference);

    let _ = std::fs::remove_file(&rig.path);
}

/// Claiming a range overlapping a live lease is refused with the pinned variant, and
/// the refusal names the holder.
#[test]
fn double_claim_of_a_live_lease_is_refused() {
    let (graph, probs) = toy_classifier(11);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "double-claim");
    let mut coord = coordinator(&rig);
    let t0 = Instant::now();

    let first = coord.claim_range("alice", 0, 2, 1_000, t0).unwrap();
    let err = coord.claim_range("bob", 1, 3, 1_000, t0).unwrap_err();
    match err {
        LeaseError::AlreadyLeased { start, end, holder } => {
            assert_eq!((start, end), (first.start, first.end));
            assert_eq!(holder, "alice");
        }
        other => panic!("expected AlreadyLeased, got {other:?}"),
    }

    let _ = std::fs::remove_file(&rig.path);
}

/// A stale worker coming back after its range was re-leased: its late release and
/// renewal are refused with the pinned `Expired` variant, and the fresh lease's
/// deadline is untouched by the stale traffic.
#[test]
fn a_stale_workers_late_release_and_renew_are_refused() {
    let (graph, probs) = toy_classifier(13);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "stale-release");
    let mut coord = coordinator(&rig);
    let t0 = Instant::now();

    let stale = coord.claim_range("ghost", 0, 2, 500, t0).unwrap();
    let after = t0 + Duration::from_millis(900);
    let fresh = coord.claim_range("heir", 0, 2, 10_000, after).unwrap();
    assert_ne!(fresh.token, stale.token);

    // The ghost's release must NOT free the heir's live lease out from under it.
    match coord.release(stale.token, after).unwrap_err() {
        LeaseError::Expired { token } => assert_eq!(token, stale.token),
        other => panic!("expected Expired, got {other:?}"),
    }
    match coord.renew(stale.token, 10_000, after).unwrap_err() {
        LeaseError::Expired { token } => assert_eq!(token, stale.token),
        other => panic!("expected Expired, got {other:?}"),
    }
    // A token the table never minted is Stale, not Expired.
    match coord
        .release(stale.token + fresh.token + 100, after)
        .unwrap_err()
    {
        LeaseError::Stale { .. } => {}
        other => panic!("expected Stale, got {other:?}"),
    }
    // The heir's lease survived all of it.
    assert!(coord.claim_range("bob", 0, 2, 1_000, after).is_err());
    coord.release(fresh.token, after).unwrap();

    let _ = std::fs::remove_file(&rig.path);
}

/// A push addressed to a different campaign's fingerprint is refused before any other
/// gate, and the store stays byte-for-byte untouched.
#[test]
fn a_push_for_the_wrong_campaign_is_refused_and_never_stored() {
    let (graph, probs) = toy_classifier(17);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "wrong-fingerprint");
    let mut coord = coordinator(&rig);
    let t0 = Instant::now();

    let grant = coord.claim_range("alice", 0, 1, 1_000, t0).unwrap();
    let record = execute(&rig, 0);
    let err = coord
        .absorb(
            "0000000000000000deadbeefdeadbeef",
            grant.token,
            record,
            t0,
            &mut NullSink,
        )
        .unwrap_err();
    match err {
        ServeError::FingerprintMismatch { expected, found } => {
            assert_eq!(expected, rig.fingerprint);
            assert_eq!(found, "0000000000000000deadbeefdeadbeef");
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    drop(coord);
    let store = CheckpointStore::open(&rig.path, &rig.fingerprint).unwrap();
    assert_eq!(store.len(), 0, "a refused push must never reach the store");

    let _ = std::fs::remove_file(&rig.path);
}

/// A push whose token does not cover the record's chunk — and a push carrying a
/// corrupt record — are refused with typed errors and leave the store empty.
#[test]
fn out_of_lease_and_corrupt_pushes_are_refused_and_never_stored() {
    let (graph, probs) = toy_classifier(19);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "bad-pushes");
    let mut coord = coordinator(&rig);
    let t0 = Instant::now();

    let grant = coord.claim_range("alice", 0, 2, 1_000, t0).unwrap();

    // Chunk 3 is outside alice's 0..2 lease.
    let outside = execute(&rig, 3);
    match coord
        .absorb(&rig.fingerprint, grant.token, outside, t0, &mut NullSink)
        .unwrap_err()
    {
        ServeError::Lease(LeaseError::NotLeased { index, token }) => {
            assert_eq!(index, 3);
            assert_eq!(token, grant.token);
        }
        other => panic!("expected Lease(NotLeased), got {other:?}"),
    }

    // A truncated tally fails merge-verify even under a valid lease.
    let mut corrupt = execute(&rig, 0);
    corrupt.tally.sdc_counts.clear();
    match coord
        .absorb(&rig.fingerprint, grant.token, corrupt, t0, &mut NullSink)
        .unwrap_err()
    {
        ServeError::Corrupt(message) => {
            assert!(message.contains("SDC counters"), "got: {message}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }

    drop(coord);
    let store = CheckpointStore::open(&rig.path, &rig.fingerprint).unwrap();
    assert_eq!(store.len(), 0, "refused pushes must never reach the store");

    let _ = std::fs::remove_file(&rig.path);
}

/// A worker retrying a push whose response was lost is answered idempotently; a
/// different record for the same chunk is a hard corruption error.
#[test]
fn duplicate_pushes_are_idempotent_but_disagreements_are_corruption() {
    let (graph, probs) = toy_classifier(23);
    let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.4)];
    let judge = ClassifierJudge::top1();
    let target = target(&graph, probs);
    let rig = rig(&target, &inputs, &judge, "duplicate");
    let mut coord = coordinator(&rig);
    let t0 = Instant::now();

    let grant = coord.claim_range("alice", 0, 1, 1_000, t0).unwrap();
    let record = execute(&rig, 0);
    coord
        .absorb(
            &rig.fingerprint,
            grant.token,
            record.clone(),
            t0,
            &mut NullSink,
        )
        .unwrap();
    // The identical record again — even with a dead token — is a silent no-op.
    coord
        .absorb(
            &rig.fingerprint,
            u64::MAX,
            record.clone(),
            t0,
            &mut NullSink,
        )
        .unwrap();

    let mut disagreeing = record;
    disagreeing.tally.unactivated = disagreeing.tally.unactivated.wrapping_add(1);
    match coord
        .absorb(
            &rig.fingerprint,
            grant.token,
            disagreeing,
            t0,
            &mut NullSink,
        )
        .unwrap_err()
    {
        ServeError::Corrupt(message) => assert!(message.contains("disagree"), "got: {message}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    drop(coord);
    let store = CheckpointStore::open(&rig.path, &rig.fingerprint).unwrap();
    assert_eq!(store.len(), 1, "exactly one durable record for chunk 0");

    let _ = std::fs::remove_file(&rig.path);
}
