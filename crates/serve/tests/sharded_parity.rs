//! The sharding parity property, pinned as a proptest: for ANY chunk partition split
//! across ANY number of simulated worker hosts (2–4), under ANY batching mode and
//! backend (f32, fixed16 or the runtime-dispatched SIMD path), the counts the
//! coordinator merges are bit-for-bit the counts of an unsharded `run_campaign`.
//!
//! This is the property that makes multi-host sharding pure orchestration: fault plans
//! are keyed by `(input, trial)` index, never by schedule or host, so WHO executes a
//! chunk — and in what order the records arrive — cannot move a single count.
//!
//! Three legs per case:
//!  1. a fresh sharded run matches the unsharded reference;
//!  2. a store pre-seeded by a partial single-host drive is finished by a sharded
//!     fleet with identical final counts (cross-mode resume, one direction);
//!  3. the sharded fleet's own store replays through the single-host driver with zero
//!     recomputation and identical counts (cross-mode resume, other direction).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use ranger_graph::{Graph, GraphBuilder, NodeId};
use ranger_inject::{
    run_campaign, BackendKind, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget,
    PreparedCampaign, SdcJudge,
};
use ranger_runtime::ThreadPool;
use ranger_serve::{
    campaign_fingerprint, drive, run_sharded, CampaignEvent, CheckpointStore, CollectSink,
    DriveOutcome, NullSink, ShardOptions,
};
use ranger_tensor::Tensor;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

fn toy_classifier(seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let h = b.dense(x, 6, 12, &mut rng);
    let h = b.relu(h);
    let h = b.dense(h, 12, 8, &mut rng);
    let h = b.relu(h);
    let y = b.dense(h, 8, 4, &mut rng);
    let probs = b.softmax(y);
    (b.into_graph(), probs)
}

fn tmp(name: String) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranger-serve-shard-{}-{name}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_partition_across_any_hosts_reproduces_the_unsharded_counts(
        chunk_len in 1usize..8,
        hosts in 2usize..5,
        preseed in 0usize..12,
        batched in 0u8..2,
        backend_choice in 0u8..3,
        seed in 0u64..1000,
    ) {
        let batched = batched == 1;
        let (graph, probs) = toy_classifier(seed.wrapping_mul(7).wrapping_add(3));
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let judge = ClassifierJudge::top1();
        let (backend, fault) = match backend_choice {
            0 => (BackendKind::F32, FaultModel::single_bit_fixed32()),
            1 => (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
            // The SIMD backend computes f32 semantics, so it pairs with the same
            // emulated fault model as the reference.
            _ => (BackendKind::Simd, FaultModel::single_bit_fixed32()),
        };
        let config = CampaignConfig {
            trials: 10,
            batch: if batched { chunk_len } else { 1 },
            workers: 1,
            backend,
            fault,
            seed,
            tile: 0,
        };

        // Ground truth: the uninterrupted, unsharded in-process API.
        let reference = run_campaign(&target, &inputs, &judge, &config).unwrap();

        let prepared =
            PreparedCampaign::with_chunk_len(&target, &inputs, &judge, &config, chunk_len)
                .unwrap();
        let total_chunks = prepared.chunks().len();
        let fingerprint = campaign_fingerprint(
            &target, &inputs, &config, &judge.categories(), chunk_len,
        ).unwrap();
        let options = ShardOptions::hosts(hosts);
        let path = tmp(format!(
            "{chunk_len}-{hosts}-{preseed}-{batched}-{backend_choice}-{seed}"
        ));
        let _ = std::fs::remove_file(&path);

        // Leg 1: a fresh sharded run over `hosts` simulated worker hosts.
        {
            let store = CheckpointStore::open(&path, &fingerprint).unwrap();
            let mut sink = CollectSink::new();
            let result = match run_sharded(&prepared, store, &options, &mut sink).unwrap() {
                DriveOutcome::Completed(result) => result,
                other => panic!("the sharded run must complete, got {other:?}"),
            };
            prop_assert_eq!(&result, &reference);

            // The merged stream is indistinguishable from a single-host one: chunks
            // in canonical order, tallies monotone, one terminal event.
            let mut expected_index = 0usize;
            let mut last_trials = 0u64;
            for event in &sink.events {
                prop_assert!(event.trials_done() >= last_trials);
                last_trials = event.trials_done();
                if let CampaignEvent::ChunkDone { chunk, resumed, .. } = event {
                    prop_assert_eq!(chunk.index, expected_index);
                    prop_assert!(!resumed);
                    expected_index += 1;
                }
            }
            prop_assert_eq!(expected_index, total_chunks);
            let dones = sink.events.iter()
                .filter(|e| matches!(e, CampaignEvent::CampaignDone { .. }))
                .count();
            prop_assert_eq!(dones, 1);
        }

        // Leg 3 (of the file just written): the sharded store replays through the
        // single-host driver — zero forward passes, identical counts. Sharded and
        // streamed checkpoints are the same durable artifact.
        {
            let mut store = CheckpointStore::open(&path, &fingerprint).unwrap();
            prop_assert_eq!(store.len(), total_chunks);
            let pool = ThreadPool::new(1);
            let cancel = AtomicBool::new(false);
            let replayed =
                match drive(&prepared, &mut store, &pool, &cancel, &mut NullSink).unwrap() {
                    DriveOutcome::Completed(result) => result,
                    other => panic!("the replay drive must complete, got {other:?}"),
                };
            prop_assert_eq!(&replayed, &reference);
        }
        let _ = std::fs::remove_file(&path);

        // Leg 2: a single-host drive killed after `preseed` chunks leaves a durable
        // prefix; a sharded fleet opens the same file and must finish the campaign
        // with the reference counts, replaying the prefix as resumed chunks.
        {
            let mut store = CheckpointStore::open(&path, &fingerprint).unwrap();
            let pool = ThreadPool::new(1);
            let cancel = AtomicBool::new(false);
            let mut sink = CollectSink::stopping_after(preseed);
            drive(&prepared, &mut store, &pool, &cancel, &mut sink).unwrap();
            drop(store);

            let store = CheckpointStore::open(&path, &fingerprint).unwrap();
            let durable_before = store.len();
            let mut sink = CollectSink::new();
            let result = match run_sharded(&prepared, store, &options, &mut sink).unwrap() {
                DriveOutcome::Completed(result) => result,
                other => panic!("the sharded resume must complete, got {other:?}"),
            };
            prop_assert_eq!(&result, &reference);
            let resumed_seen = sink.events.iter()
                .filter(|e| matches!(e, CampaignEvent::ChunkDone { resumed: true, .. }))
                .count();
            prop_assert_eq!(resumed_seen, durable_before);
        }

        let _ = std::fs::remove_file(&path);
    }
}
