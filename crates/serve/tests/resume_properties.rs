//! The resumability property, pinned as a proptest: for ANY chunk partition, ANY kill
//! point, ANY worker count, batching mode and backend (f32, fixed16 or the
//! runtime-dispatched SIMD path), a campaign that is stopped after
//! `k` chunks and then re-driven from its checkpoint finishes with bit-for-bit the SDC,
//! trial and unactivated counts of an uninterrupted `run_campaign`.
//!
//! This is the property that makes the checkpoint store trustworthy: fault plans are
//! keyed by `(input, trial)` index, never by schedule, so the partition and the resume
//! point are pure bookkeeping.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use ranger_graph::{Graph, GraphBuilder, NodeId};
use ranger_inject::{
    run_campaign, BackendKind, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget,
    PreparedCampaign, SdcJudge,
};
use ranger_runtime::ThreadPool;
use ranger_serve::campaign_fingerprint;
use ranger_serve::{drive, CampaignEvent, CheckpointStore, CollectSink, DriveOutcome, NullSink};
use ranger_tensor::Tensor;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

fn toy_classifier(seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let h = b.dense(x, 6, 12, &mut rng);
    let h = b.relu(h);
    let h = b.dense(h, 12, 8, &mut rng);
    let h = b.relu(h);
    let y = b.dense(h, 8, 4, &mut rng);
    let probs = b.softmax(y);
    (b.into_graph(), probs)
}

fn tmp(name: String) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranger-serve-resume-{}-{name}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_partition_and_resume_point_reproduces_the_uninterrupted_counts(
        chunk_len in 1usize..8,
        kill_after in 0usize..24,
        workers in 1usize..5,
        batched in 0u8..2,
        backend_choice in 0u8..3,
        seed in 0u64..1000,
    ) {
        let batched = batched == 1;
        let (graph, probs) = toy_classifier(seed.wrapping_mul(3).wrapping_add(1));
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let judge = ClassifierJudge::top1();
        let (backend, fault) = match backend_choice {
            0 => (BackendKind::F32, FaultModel::single_bit_fixed32()),
            1 => (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
            // The SIMD backend computes f32 semantics, so it pairs with the same
            // emulated fault model as the reference.
            _ => (BackendKind::Simd, FaultModel::single_bit_fixed32()),
        };
        let config = CampaignConfig {
            trials: 10,
            // Batched execution requires chunk_len == batch; the partition under test
            // doubles as the batch size when batching is on.
            batch: if batched { chunk_len } else { 1 },
            workers,
            backend,
            fault,
            seed,
            tile: 0,
        };

        // Ground truth: the uninterrupted in-process API.
        let reference = run_campaign(&target, &inputs, &judge, &config).unwrap();

        let prepared =
            PreparedCampaign::with_chunk_len(&target, &inputs, &judge, &config, chunk_len)
                .unwrap();
        let total_chunks = prepared.chunks().len();
        let fingerprint = campaign_fingerprint(
            &target, &inputs, &config, &judge.categories(), chunk_len,
        ).unwrap();
        let pool = ThreadPool::new(workers);
        let path = tmp(format!(
            "{chunk_len}-{kill_after}-{workers}-{batched}-{backend_choice}-{seed}"
        ));
        let _ = std::fs::remove_file(&path);

        // Leg 1: run until the sink "kills" the campaign after `kill_after` chunks.
        {
            let mut store = CheckpointStore::open(&path, &fingerprint).unwrap();
            let cancel = AtomicBool::new(false);
            let mut sink = CollectSink::stopping_after(kill_after);
            let outcome = drive(&prepared, &mut store, &pool, &cancel, &mut sink).unwrap();
            match outcome {
                DriveOutcome::Stopped(_) => prop_assert!(kill_after <= total_chunks),
                // A kill point past the end never fires: the campaign just completes.
                DriveOutcome::Completed(result) => {
                    prop_assert!(kill_after >= total_chunks);
                    prop_assert_eq!(&result, &reference);
                }
            }
        }

        // Leg 2: a fresh driver resumes from the checkpoint and must finish with the
        // reference counts exactly, replaying the durable prefix as resumed chunks.
        let mut store = CheckpointStore::open(&path, &fingerprint).unwrap();
        let durable_before = store.len();
        prop_assert!(
            durable_before >= kill_after.min(total_chunks),
            "every chunk the sink observed must be durable: {} < {}",
            durable_before, kill_after.min(total_chunks)
        );
        let cancel = AtomicBool::new(false);
        let mut sink = CollectSink::new();
        let resumed_result = match drive(&prepared, &mut store, &pool, &cancel, &mut sink)
            .unwrap()
        {
            DriveOutcome::Completed(result) => result,
            other => panic!("the resumed drive must complete, got {other:?}"),
        };
        prop_assert_eq!(&resumed_result, &reference);
        prop_assert_eq!(store.len(), total_chunks);

        // The replayed stream is indistinguishable from an uninterrupted one: chunks in
        // canonical order, the durable prefix flagged as resumed, tallies monotone.
        let mut expected_index = 0usize;
        let mut last_trials = 0u64;
        let mut resumed_seen = 0usize;
        for event in &sink.events {
            prop_assert!(event.trials_done() >= last_trials);
            last_trials = event.trials_done();
            if let CampaignEvent::ChunkDone { chunk, resumed, .. } = event {
                prop_assert_eq!(chunk.index, expected_index);
                expected_index += 1;
                if *resumed {
                    resumed_seen += 1;
                }
            }
        }
        prop_assert_eq!(expected_index, total_chunks);
        prop_assert_eq!(resumed_seen, durable_before);

        // Leg 3: driving the finished campaign again replays everything from the log —
        // zero forward passes — and still reports the identical result.
        drop(store);
        let mut store = CheckpointStore::open(&path, &fingerprint).unwrap();
        let cancel = AtomicBool::new(false);
        let replayed = match drive(&prepared, &mut store, &pool, &cancel, &mut NullSink).unwrap() {
            DriveOutcome::Completed(result) => result,
            other => panic!("the fully-checkpointed drive must complete, got {other:?}"),
        };
        prop_assert_eq!(&replayed, &reference);

        let _ = std::fs::remove_file(&path);
    }
}
