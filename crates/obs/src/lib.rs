//! Zero-dependency metrics and tracing for the Ranger reproduction.
//!
//! Every layer of the stack — `ExecPlan` kernels, the work-stealing thread pool, the
//! chunked campaign driver and the `ranger-serve` TCP service — records into one
//! process-global [`MetricsRegistry`] holding three metric families:
//!
//! - [`Counter`] — a monotonically increasing `AtomicU64` (tasks executed, steals,
//!   accumulated per-op nanoseconds, torn checkpoint tails, …).
//! - [`Gauge`] — a signed `AtomicI64` level (active campaigns, worker count of the
//!   last pool run, …).
//! - [`Histogram`] — a log2-bucketed latency distribution reporting approximate
//!   p50/p90/p99 and an exact max, fed either directly via
//!   [`Histogram::record`] or through the RAII span timer returned by
//!   [`Histogram::span`].
//!
//! # The determinism contract
//!
//! Campaign results in this repo are pinned bit-for-bit across workers, batch sizes
//! and backends, and metrics must never perturb that. Two rules make it so, and the
//! test suite enforces them end to end:
//!
//! 1. **Metrics draw no RNG.** Recording is wall-clock reads and atomic adds only;
//!    the per-(input, trial) SplitMix64 streams are untouched.
//! 2. **Nothing branches on an observed value.** Instrumented code may check
//!    *whether metrics are enabled*, but never changes an execution decision based
//!    on a recorded count or duration.
//!
//! Consequently SDC counts are identical with metrics on, off, or sampled anywhere
//! in between, which `tests/metrics_determinism.rs` pins on LeNet across the
//! (workers × batch × backend) grid.
//!
//! # Cost model
//!
//! The registry boots **disabled** unless the `RANGER_METRICS` environment variable
//! is `1`/`true`. A disabled metric is one relaxed atomic load and a branch — no
//! clock read, no contention — cheap enough to leave compiled into the hottest
//! loops (a bench assertion in this crate bounds it). Enabled-path recording is a
//! handful of relaxed atomic RMWs; handles are meant to be resolved **once**, at
//! setup time ([`MetricsRegistry::counter`] takes a lock), and then recorded
//! through without any lookup. Hot paths that must stay allocation-free (the warmed
//! `ExecPlan` pass) pre-size their slots at warm time; `alloc_free_plan.rs` pins a
//! metrics-enabled warmed pass at zero heap allocations.
//!
//! # Example
//!
//! ```
//! use ranger_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! registry.set_enabled(true);
//!
//! let trials = registry.counter("campaign.trials");
//! trials.add(128);
//!
//! let latency = registry.histogram("campaign.chunk_nanos");
//! {
//!     let _span = latency.span(); // records elapsed nanos on drop
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("campaign.trials"), Some(128));
//! assert!(snapshot.to_json().starts_with('{'));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metric;
mod snapshot;

pub use metric::{Counter, Gauge, Histogram, Span, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSummary, MetricsSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A named collection of counters, gauges and histograms sharing one enable switch.
///
/// Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s interned by
/// name: the first lookup registers the metric, later lookups return the same
/// instance. Lookups take a mutex — resolve handles once at setup time and record
/// through them; never look up inside a hot loop.
///
/// Most code uses the process-global instance via [`registry()`]; separate
/// instances exist for tests and for embedding.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry with recording **disabled**.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(false)),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates a registry whose initial enable state follows the `RANGER_METRICS`
    /// environment variable (`1` or `true` ⇒ enabled).
    ///
    /// Like `RANGER_WORKERS` and `RANGER_BACKEND`, the variable is read once, when
    /// the registry is constructed, so one process observes one consistent setting.
    pub fn from_env() -> Self {
        let registry = MetricsRegistry::new();
        if let Ok(value) = std::env::var("RANGER_METRICS") {
            if value == "1" || value.eq_ignore_ascii_case("true") {
                registry.set_enabled(true);
            }
        }
        registry
    }

    /// Returns whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every metric minted from this registry.
    ///
    /// The switch is shared: handles resolved before the call observe the change.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns (registering on first use) the counter with the given name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("metrics registry poisoned");
        counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Counter::new(Arc::clone(&self.enabled))))
            .clone()
    }

    /// Returns (registering on first use) the gauge with the given name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("metrics registry poisoned");
        gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Gauge::new(Arc::clone(&self.enabled))))
            .clone()
    }

    /// Returns (registering on first use) the histogram with the given name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        histograms
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new(Arc::clone(&self.enabled))))
            .clone()
    }

    /// Captures a point-in-time, name-sorted copy of every registered metric.
    ///
    /// Concurrent recording keeps going while the snapshot is taken; individual
    /// values are each read atomically but the set is not a global cut.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, counter)| (name.clone(), counter.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.summary()))
            .collect();
        MetricsSnapshot {
            enabled: self.enabled(),
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric, keeping registrations and the enable state.
    ///
    /// Used by tests and by surfaces that want per-run rather than per-process
    /// numbers.
    pub fn reset(&self) {
        for counter in self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            counter.reset();
        }
        for gauge in self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            gauge.reset();
        }
        for histogram in self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .values()
        {
            histogram.reset();
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// Returns the process-global registry, constructing it (honouring
/// `RANGER_METRICS`) on first use.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::from_env)
}

/// Returns whether the process-global registry is recording.
pub fn enabled() -> bool {
    registry().enabled()
}

/// Turns the process-global registry on or off.
///
/// The CLI flips this on for `--metrics-json` / `--profile` runs and the serve
/// front end enables it at bind time; everything else inherits the
/// `RANGER_METRICS` default.
pub fn set_enabled(on: bool) {
    registry().set_enabled(on)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("c");
        let gauge = registry.gauge("g");
        let histogram = registry.histogram("h");
        counter.add(5);
        gauge.set(7);
        histogram.record(100);
        assert_eq!(counter.value(), 0);
        assert_eq!(gauge.value(), 0);
        assert_eq!(histogram.summary().count, 0);
    }

    #[test]
    fn enabling_is_shared_with_previously_minted_handles() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("c");
        registry.set_enabled(true);
        counter.increment();
        assert_eq!(counter.value(), 1);
        registry.set_enabled(false);
        counter.increment();
        assert_eq!(counter.value(), 1);
    }

    #[test]
    fn handles_are_interned_by_name() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        registry.counter("same").add(1);
        registry.counter("same").add(2);
        assert_eq!(registry.counter("same").value(), 3);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        registry.counter("b").add(2);
        registry.counter("a").add(1);
        registry.gauge("depth").set(-3);
        registry.histogram("lat").record(9);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snapshot.counter("a"), Some(1));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauges, vec![("depth".to_owned(), -3)]);
        assert_eq!(snapshot.histogram("lat").unwrap().max, 9);
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations_and_enable_state() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        registry.counter("c").add(9);
        registry.histogram("h").record(9);
        registry.reset();
        assert!(registry.enabled());
        assert_eq!(registry.snapshot().counter("c"), Some(0));
        assert_eq!(registry.snapshot().histogram("h").unwrap().count, 0);
    }

    /// The bench assertion from the issue: a disabled metric must be a near-no-op.
    ///
    /// 10 million disabled increments + span starts is a handful of milliseconds of
    /// relaxed loads on any host this runs on; the bound below allows 50ns per
    /// operation — an order of magnitude of CI-noise headroom — and still fails
    /// loudly if someone accidentally puts a clock read or a lock on the disabled
    /// path.
    #[test]
    fn disabled_recording_is_near_free() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("hot");
        let histogram = registry.histogram("hot_nanos");
        const ITERS: u64 = 10_000_000;
        let start = Instant::now();
        for _ in 0..ITERS {
            counter.increment();
            let _span = histogram.span();
        }
        let elapsed = start.elapsed();
        assert_eq!(counter.value(), 0, "disabled counter must not advance");
        assert!(
            elapsed < Duration::from_millis(1000),
            "disabled metrics took {elapsed:?} for {ITERS} iterations (> 50ns/op)"
        );
    }
}
