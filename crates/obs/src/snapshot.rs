//! Point-in-time metric snapshots and their line-JSON serialization.

/// The summarized state of one [`Histogram`](crate::Histogram).
///
/// `p50`/`p90`/`p99` are log2-bucket estimates (exact within a factor of two,
/// clamped to `max`); `count`, `sum` and `max` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values (e.g. total nanoseconds).
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact largest recorded value.
    pub max: u64,
}

/// A point-in-time, name-sorted copy of a registry's metrics.
///
/// Produced by [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot);
/// serialized by [`to_json`](MetricsSnapshot::to_json) as a single JSON line.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Whether the registry was recording when the snapshot was taken.
    pub enabled: bool,
    /// All counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// All histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge level by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Returns the counters whose names start with `prefix`, in name order.
    ///
    /// Handy for pulling out one layer's family, e.g. `plan.op.` or
    /// `pool.worker.`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .iter()
            .filter(move |(name, _)| name.starts_with(prefix))
            .map(|(name, value)| (name.as_str(), *value))
    }

    /// Serializes the snapshot as one line of JSON.
    ///
    /// Assembled by hand, the same trick as the bench harness reports: the
    /// vendored serde subset has no `BTreeMap` impl, and the key order should be
    /// deterministic (name-sorted) either way.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(
            64 + 32 * (self.counters.len() + self.gauges.len()) + 96 * self.histograms.len(),
        );
        out.push_str("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });

        out.push_str(",\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push('}');

        out.push_str(",\"gauges\":{");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (index, (name, summary)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                summary.count, summary.sum, summary.p50, summary.p90, summary.p99, summary.max
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Appends `value` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
///
/// Metric names are ASCII identifiers in practice, but the escape keeps the
/// serializer total.
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_is_one_deterministic_line() {
        let snapshot = MetricsSnapshot {
            enabled: true,
            counters: vec![("a.count".to_owned(), 3), ("b.count".to_owned(), 0)],
            gauges: vec![("depth".to_owned(), -2)],
            histograms: vec![(
                "lat".to_owned(),
                HistogramSummary {
                    count: 2,
                    sum: 30,
                    p50: 15,
                    p90: 20,
                    p99: 20,
                    max: 20,
                },
            )],
        };
        let json = snapshot.to_json();
        assert_eq!(
            json,
            "{\"enabled\":true,\"counters\":{\"a.count\":3,\"b.count\":0},\
             \"gauges\":{\"depth\":-2},\"histograms\":{\"lat\":{\"count\":2,\
             \"sum\":30,\"p50\":15,\"p90\":20,\"p99\":20,\"max\":20}}}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn json_escapes_awkward_names() {
        let snapshot = MetricsSnapshot {
            enabled: false,
            counters: vec![("we\"ird\\name\n".to_owned(), 1)],
            gauges: vec![],
            histograms: vec![],
        };
        assert!(snapshot.to_json().contains("\"we\\\"ird\\\\name\\n\":1"));
    }

    #[test]
    fn prefix_query_selects_one_family() {
        let snapshot = MetricsSnapshot {
            enabled: true,
            counters: vec![
                ("plan.op.Conv2D.nanos".to_owned(), 10),
                ("plan.op.Relu.nanos".to_owned(), 2),
                ("pool.worker.0.tasks".to_owned(), 5),
            ],
            gauges: vec![],
            histograms: vec![],
        };
        let ops: Vec<_> = snapshot.counters_with_prefix("plan.op.").collect();
        assert_eq!(
            ops,
            vec![("plan.op.Conv2D.nanos", 10), ("plan.op.Relu.nanos", 2)]
        );
    }
}
