//! The three metric primitives and the RAII span timer.
//!
//! Every primitive shares the registry's enable flag: when it is off, recording is
//! one relaxed load and an early return, with no clock read and no RMW — cheap
//! enough to stay compiled into the hottest loops.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0 holds only zero), so
/// 64 buckets cover the whole `u64` range — in particular any duration expressible
/// in nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing `u64`, recorded with relaxed atomics.
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter (no-op while the registry is disabled).
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op while the registry is disabled).
    pub fn increment(&self) {
        self.add(1);
    }

    /// Returns the current value (readable even while disabled).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed level that can move both ways (active campaigns, configured workers).
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to `v` (no-op while the registry is disabled).
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (which may be negative) to the gauge (no-op while disabled).
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Returns the current level (readable even while disabled).
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log2-bucketed distribution with approximate quantiles and an exact max.
///
/// Values (typically nanoseconds) land in the bucket matching their bit length, so
/// quantiles are exact to within a factor of two — plenty for latency triage —
/// while recording stays four relaxed RMWs with no locking and no allocation.
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (no-op while the registry is disabled).
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a span timer that records its elapsed nanoseconds here on drop.
    ///
    /// While the registry is disabled the span is inert: no clock is read at either
    /// end.
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: if self.enabled.load(Ordering::Relaxed) {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Summarizes the distribution: count, sum, p50/p90/p99 and exact max.
    pub fn summary(&self) -> crate::HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        crate::HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50: quantile(&buckets, count, max, 0.50),
            p90: quantile(&buckets, count, max, 0.90),
            p99: quantile(&buckets, count, max, 0.99),
            max,
        }
    }

    pub(crate) fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// RAII timer from [`Histogram::span`]: records elapsed nanoseconds on drop.
///
/// Dropping a span started while the registry was disabled does nothing, even if
/// the registry was enabled in between — a span never records a half-timed
/// interval.
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Discards the span without recording (e.g. on an error path that would
    /// pollute a success-latency distribution).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram
                .record(saturating_nanos(start.elapsed().as_nanos()));
        }
    }
}

/// Clamps a `u128` nanosecond count into the `u64` a histogram stores.
///
/// 2^64 ns is ~584 years, so saturation is theoretical — but the clamp keeps the
/// conversion total.
fn saturating_nanos(nanos: u128) -> u64 {
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// Maps a value to its log2 bucket: 0 → 0, otherwise the value's bit length.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value a bucket can hold: `2^i - 1` for bucket `i`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Estimates quantile `q` by walking the cumulative bucket counts.
///
/// Returns the upper bound of the bucket containing the `ceil(q · count)`-th
/// observation, clamped to the exact recorded max so the tail never overshoots.
fn quantile(buckets: &[u64], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (index, &bucket) in buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= target {
            return bucket_upper_bound(index).min(max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_summary_reports_quantiles_within_a_factor_of_two() {
        let histogram = Histogram::new(enabled_flag());
        // 100 observations: 90 fast (≈100ns), 10 slow (≈100µs).
        for _ in 0..90 {
            histogram.record(100);
        }
        for _ in 0..10 {
            histogram.record(100_000);
        }
        let summary = histogram.summary();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.sum, 90 * 100 + 10 * 100_000);
        assert_eq!(summary.max, 100_000);
        // p50/p90 land in the fast bucket [64, 127], p99 in the slow one.
        assert!((100..200).contains(&summary.p50), "p50 = {}", summary.p50);
        assert!((100..200).contains(&summary.p90), "p90 = {}", summary.p90);
        assert!(
            summary.p99 >= 65_536 && summary.p99 <= 100_000,
            "p99 = {}",
            summary.p99
        );
    }

    #[test]
    fn quantiles_never_exceed_the_exact_max() {
        let histogram = Histogram::new(enabled_flag());
        histogram.record(1_000);
        let summary = histogram.summary();
        assert_eq!(summary.p50, 1_000);
        assert_eq!(summary.p99, 1_000);
        assert_eq!(summary.max, 1_000);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let histogram = Histogram::new(enabled_flag());
        {
            let _span = histogram.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let summary = histogram.summary();
        assert_eq!(summary.count, 1);
        assert!(summary.max >= 1_000_000, "max = {}", summary.max);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let histogram = Histogram::new(enabled_flag());
        let span = histogram.span();
        span.cancel();
        assert_eq!(histogram.summary().count, 0);
    }

    #[test]
    fn span_started_while_disabled_stays_inert_after_enable() {
        let flag = Arc::new(AtomicBool::new(false));
        let histogram = Histogram::new(Arc::clone(&flag));
        let span = histogram.span();
        flag.store(true, Ordering::Relaxed);
        drop(span);
        assert_eq!(histogram.summary().count, 0);
    }
}
