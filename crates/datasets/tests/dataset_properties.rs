//! Property-based tests for the synthetic dataset generators.

use proptest::prelude::*;
use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
use ranger_datasets::driving::{AngleUnit, DrivingDataset, FRAME_SHAPE, MAX_ANGLE_DEGREES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated classification sample has a valid label and pixel values in [0, 1].
    #[test]
    fn classification_samples_are_well_formed(seed in 0u64..500, n in 1usize..40) {
        for domain in [
            ImageDomain::Digits,
            ImageDomain::Objects,
            ImageDomain::TrafficSigns,
            ImageDomain::NaturalScenes,
        ] {
            let data = ClassificationDataset::generate(domain, n, n / 2, seed);
            prop_assert_eq!(data.train.len(), n);
            prop_assert_eq!(data.validation.len(), n / 2);
            let (c, h, w) = domain.image_shape();
            for sample in data.train.iter().chain(&data.validation) {
                prop_assert!(sample.label < domain.num_classes());
                prop_assert_eq!(sample.image.dims(), &[c, h, w]);
                prop_assert!(sample.image.min() >= 0.0 && sample.image.max() <= 1.0);
                prop_assert!(!sample.image.has_non_finite());
            }
        }
    }

    /// Dataset generation is a pure function of its seed.
    #[test]
    fn classification_generation_is_deterministic(seed in 0u64..500) {
        let a = ClassificationDataset::generate(ImageDomain::Objects, 12, 4, seed);
        let b = ClassificationDataset::generate(ImageDomain::Objects, 12, 4, seed);
        for (x, y) in a.train.iter().zip(&b.train) {
            prop_assert_eq!(&x.image, &y.image);
            prop_assert_eq!(x.label, y.label);
        }
    }

    /// Driving frames are well formed and their targets convert consistently between
    /// degrees and radians.
    #[test]
    fn driving_frames_are_well_formed(seed in 0u64..500, n in 1usize..30) {
        let data = DrivingDataset::generate(n, n / 2, seed);
        let (c, h, w) = FRAME_SHAPE;
        for frame in data.train.iter().chain(&data.validation) {
            prop_assert_eq!(frame.image.dims(), &[c, h, w]);
            prop_assert!(frame.angle_degrees.abs() <= MAX_ANGLE_DEGREES);
            prop_assert!(!frame.image.has_non_finite());
        }
        if !data.train.is_empty() {
            let indices: Vec<usize> = (0..data.train.len().min(4)).collect();
            let (_, deg) = data.train_batch(&indices, AngleUnit::Degrees);
            let (_, rad) = data.train_batch(&indices, AngleUnit::Radians);
            for (d, r) in deg.data().iter().zip(rad.data()) {
                prop_assert!((d.to_radians() - r).abs() < 1e-4);
            }
        }
    }

    /// Batching returns the requested samples in order with matching labels.
    #[test]
    fn batches_follow_requested_indices(seed in 0u64..200) {
        let data = ClassificationDataset::generate(ImageDomain::Digits, 20, 10, seed);
        let (batch, labels) = data.train_batch(&[3, 0, 7]);
        prop_assert_eq!(batch.dims()[0], 3);
        prop_assert_eq!(labels, vec![data.train[3].label, data.train[0].label, data.train[7].label]);
    }
}
