//! Deterministic synthetic datasets for the Ranger reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10, GTSRB, ImageNet and a real-world driving
//! dataset. Those datasets (and the pretrained weights that go with them) are not
//! available to this reproduction, so this crate generates synthetic datasets with the
//! same *task shape*:
//!
//! * [`classification`] — class-conditional structured images (digit strokes, coloured
//!   textures, sign glyphs) with a train/validation split, standing in for
//!   MNIST/CIFAR-10/GTSRB/ImageNet.
//! * [`driving`] — rendered road scenes whose ground-truth steering angle is computed from
//!   the road curvature, standing in for the SullyChen driving dataset used by the Nvidia
//!   Dave and Comma.ai models. Targets are available in both radians and degrees because
//!   the radians/degrees distinction drives the paper's Fig. 7/Fig. 10 analysis.
//!
//! Every generator is a pure function of its seed, so experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
//!
//! let data = ClassificationDataset::generate(ImageDomain::Digits, 200, 50, 7);
//! assert_eq!(data.train.len(), 200);
//! assert_eq!(data.validation.len(), 50);
//! let (batch, labels) = data.train_batch(&[0, 1, 2]);
//! assert_eq!(batch.dims()[0], 3);
//! assert_eq!(labels.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod classification;
pub mod driving;
pub mod image;

pub use classification::{ClassificationDataset, ImageDomain, LabeledImage};
pub use driving::{AngleUnit, DrivingDataset, DrivingFrame};
