//! Synthetic driving dataset for the steering-angle regression models.
//!
//! The paper's Nvidia Dave and Comma.ai benchmarks predict a steering angle from a front
//! camera frame (the SullyChen driving dataset). This generator renders a simplified road
//! scene — two lane markings following a curved centre line on a dark road surface with a
//! sky band — and computes the ground-truth steering angle from the curvature used to
//! render the frame. The angle is available in degrees and radians because the paper
//! attributes the Dave model's weaker protection to its radian output passing through the
//! horizontally-asymptotic `atan`.

use crate::image::{stack, Canvas};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The unit a steering target is expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AngleUnit {
    /// Steering angle in degrees (the Comma.ai model and the retrained Dave model).
    Degrees,
    /// Steering angle in radians (the original Dave model).
    Radians,
}

impl AngleUnit {
    /// Converts an angle in degrees into this unit.
    pub fn from_degrees(&self, degrees: f32) -> f32 {
        match self {
            AngleUnit::Degrees => degrees,
            AngleUnit::Radians => degrees.to_radians(),
        }
    }

    /// Converts an angle in this unit back to degrees.
    pub fn to_degrees(&self, value: f32) -> f32 {
        match self {
            AngleUnit::Degrees => value,
            AngleUnit::Radians => value.to_degrees(),
        }
    }
}

/// One driving frame: the camera image and its ground-truth steering angle in degrees.
#[derive(Debug, Clone)]
pub struct DrivingFrame {
    /// Camera image in `(C, H, W)` layout.
    pub image: Tensor,
    /// Ground-truth steering angle in degrees (convert with [`AngleUnit`] as needed).
    pub angle_degrees: f32,
}

/// A train/validation split of driving frames.
#[derive(Debug, Clone)]
pub struct DrivingDataset {
    /// Training frames.
    pub train: Vec<DrivingFrame>,
    /// Validation frames (unseen data for accuracy evaluation).
    pub validation: Vec<DrivingFrame>,
}

/// Image shape of driving frames: `(channels, height, width)`.
pub const FRAME_SHAPE: (usize, usize, usize) = (3, 16, 32);

/// Maximum steering-angle magnitude (degrees) produced by the generator.
///
/// The paper's Fig. 1 example shows angles around 156°, i.e. the recorded steering-wheel
/// angle rather than the wheel-ground angle, so the synthetic range is similarly wide.
pub const MAX_ANGLE_DEGREES: f32 = 160.0;

impl DrivingDataset {
    /// Generates a dataset deterministically from `seed`.
    pub fn generate(n_train: usize, n_validation: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let train = (0..n_train).map(|_| generate_frame(&mut rng)).collect();
        let validation = (0..n_validation)
            .map(|_| generate_frame(&mut rng))
            .collect();
        DrivingDataset { train, validation }
    }

    /// Stacks the selected training frames into an `(N, C, H, W)` batch and a target
    /// vector in the requested unit.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn train_batch(&self, indices: &[usize], unit: AngleUnit) -> (Tensor, Tensor) {
        batch_of(&self.train, indices, unit)
    }

    /// Stacks the selected validation frames into an `(N, C, H, W)` batch and a target
    /// vector in the requested unit.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn validation_batch(&self, indices: &[usize], unit: AngleUnit) -> (Tensor, Tensor) {
        batch_of(&self.validation, indices, unit)
    }
}

fn batch_of(frames: &[DrivingFrame], indices: &[usize], unit: AngleUnit) -> (Tensor, Tensor) {
    let images: Vec<&Tensor> = indices.iter().map(|&i| &frames[i].image).collect();
    let targets: Vec<f32> = indices
        .iter()
        .map(|&i| unit.from_degrees(frames[i].angle_degrees))
        .collect();
    let n = targets.len();
    (
        stack(&images),
        Tensor::from_vec(vec![n, 1], targets).expect("targets shape matches length"),
    )
}

/// Renders one frame with a random road curvature and returns it with its ground-truth
/// steering angle.
fn generate_frame(rng: &mut StdRng) -> DrivingFrame {
    // Steering proportional to curvature; sample the angle first so the distribution of
    // targets is uniform over the full range.
    let angle_degrees = rng.gen_range(-MAX_ANGLE_DEGREES..MAX_ANGLE_DEGREES);
    let curvature = angle_degrees / MAX_ANGLE_DEGREES; // in [-1, 1]
    let (c, h, w) = FRAME_SHAPE;
    let mut canvas = Canvas::new(c, h, w);

    let horizon = h / 3;
    // Sky band.
    for y in 0..horizon {
        for x in 0..w {
            canvas.set(0, y as isize, x as isize, 0.55 + rng.gen_range(-0.02..0.02));
            canvas.set(1, y as isize, x as isize, 0.65 + rng.gen_range(-0.02..0.02));
            canvas.set(2, y as isize, x as isize, 0.85 + rng.gen_range(-0.02..0.02));
        }
    }
    // Road surface.
    for y in horizon..h {
        for x in 0..w {
            let v = 0.25 + rng.gen_range(-0.03..0.03);
            for ch in 0..3 {
                canvas.set(ch, y as isize, x as isize, v);
            }
        }
    }
    // Lane markings: centre line bends with the curvature; the lane widens toward the
    // bottom of the frame (perspective).
    let centre_x = w as f32 / 2.0 + rng.gen_range(-1.0..1.0);
    for y in horizon..h {
        // t in [0, 1]: 0 at the horizon, 1 at the bottom of the frame.
        let t = (y - horizon) as f32 / (h - horizon) as f32;
        // The road bends away from centre as we look toward the horizon.
        let bend = curvature * (1.0 - t) * (1.0 - t) * (w as f32 / 2.5);
        let half_width = 2.0 + t * (w as f32 / 4.0);
        let cx = centre_x + bend;
        for (ch, v) in [(0, 0.95f32), (1, 0.95), (2, 0.2)] {
            canvas.set(ch, y as isize, (cx - half_width).round() as isize, v);
            canvas.set(ch, y as isize, (cx + half_width).round() as isize, v);
        }
        // Dashed centre line.
        if y % 2 == 0 {
            for ch in 0..3 {
                canvas.set(ch, y as isize, cx.round() as isize, 0.9);
            }
        }
    }
    DrivingFrame {
        image: canvas.into_tensor(),
        angle_degrees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DrivingDataset::generate(10, 5, 42);
        let b = DrivingDataset::generate(10, 5, 42);
        assert_eq!(a.train[3].image, b.train[3].image);
        assert_eq!(a.train[3].angle_degrees, b.train[3].angle_degrees);
    }

    #[test]
    fn frames_have_expected_shape_and_range() {
        let d = DrivingDataset::generate(8, 4, 1);
        let (c, h, w) = FRAME_SHAPE;
        for f in d.train.iter().chain(&d.validation) {
            assert_eq!(f.image.dims(), &[c, h, w]);
            assert!(f.angle_degrees.abs() <= MAX_ANGLE_DEGREES);
            assert!(f.image.max() <= 1.0 && f.image.min() >= 0.0);
        }
    }

    #[test]
    fn angles_cover_both_directions() {
        let d = DrivingDataset::generate(200, 0, 5);
        let lefts = d.train.iter().filter(|f| f.angle_degrees < -20.0).count();
        let rights = d.train.iter().filter(|f| f.angle_degrees > 20.0).count();
        assert!(lefts > 10 && rights > 10);
    }

    #[test]
    fn batch_targets_respect_angle_unit() {
        let d = DrivingDataset::generate(4, 0, 3);
        let (imgs, deg) = d.train_batch(&[0, 1], AngleUnit::Degrees);
        let (_, rad) = d.train_batch(&[0, 1], AngleUnit::Radians);
        assert_eq!(imgs.dims()[0], 2);
        for i in 0..2 {
            assert!((deg.data()[i].to_radians() - rad.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn angle_unit_round_trips() {
        let deg = 123.4f32;
        assert!(
            (AngleUnit::Radians.to_degrees(AngleUnit::Radians.from_degrees(deg)) - deg).abs()
                < 1e-4
        );
        assert_eq!(AngleUnit::Degrees.from_degrees(deg), deg);
    }

    #[test]
    fn frames_with_opposite_curvature_differ() {
        // Find one strongly-left and one strongly-right frame and check their images are
        // substantially different — the model must be able to read the curvature.
        let d = DrivingDataset::generate(100, 0, 8);
        let left = d.train.iter().find(|f| f.angle_degrees < -100.0).unwrap();
        let right = d.train.iter().find(|f| f.angle_degrees > 100.0).unwrap();
        assert!(left.image.sub(&right.image).unwrap().l2_norm() > 0.5);
    }
}
