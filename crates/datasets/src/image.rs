//! Small image-drawing primitives used by the synthetic dataset generators.
//!
//! Images are `(channels, height, width)` tensors with values in `[0, 1]` before
//! normalization.

use ranger_tensor::Tensor;

/// A mutable multi-channel raster image.
#[derive(Debug, Clone)]
pub struct Canvas {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Canvas {
    /// Creates a black canvas.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Canvas {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Returns `(channels, height, width)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Sets one pixel of one channel, ignoring out-of-bounds coordinates.
    pub fn set(&mut self, channel: usize, y: isize, x: isize, value: f32) {
        if channel >= self.channels || y < 0 || x < 0 {
            return;
        }
        let (y, x) = (y as usize, x as usize);
        if y >= self.height || x >= self.width {
            return;
        }
        self.data[(channel * self.height + y) * self.width + x] = value;
    }

    /// Adds `value` to one pixel of one channel, ignoring out-of-bounds coordinates.
    pub fn splat(&mut self, channel: usize, y: isize, x: isize, value: f32) {
        if channel >= self.channels || y < 0 || x < 0 {
            return;
        }
        let (y, x) = (y as usize, x as usize);
        if y >= self.height || x >= self.width {
            return;
        }
        let v = &mut self.data[(channel * self.height + y) * self.width + x];
        *v = (*v + value).clamp(0.0, 1.0);
    }

    /// Fills every channel of every pixel with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Draws an axis-aligned filled rectangle on one channel.
    pub fn fill_rect(
        &mut self,
        channel: usize,
        y0: isize,
        x0: isize,
        h: usize,
        w: usize,
        value: f32,
    ) {
        for dy in 0..h as isize {
            for dx in 0..w as isize {
                self.set(channel, y0 + dy, x0 + dx, value);
            }
        }
    }

    /// Draws a filled circle on one channel.
    pub fn fill_circle(&mut self, channel: usize, cy: isize, cx: isize, radius: f32, value: f32) {
        let r = radius.ceil() as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                if ((dy * dy + dx * dx) as f32).sqrt() <= radius {
                    self.set(channel, cy + dy, cx + dx, value);
                }
            }
        }
    }

    /// Draws a straight line segment on one channel using simple linear interpolation.
    pub fn line(&mut self, channel: usize, y0: f32, x0: f32, y1: f32, x1: f32, value: f32) {
        let steps = ((y1 - y0).abs().max((x1 - x0).abs()).ceil() as usize).max(1);
        for s in 0..=steps {
            let t = s as f32 / steps as f32;
            let y = y0 + (y1 - y0) * t;
            let x = x0 + (x1 - x0) * t;
            self.set(channel, y.round() as isize, x.round() as isize, value);
        }
    }

    /// Converts the canvas into a `(C, H, W)` tensor.
    pub fn into_tensor(self) -> Tensor {
        Tensor::from_vec(vec![self.channels, self.height, self.width], self.data)
            .expect("canvas dimensions are consistent by construction")
    }
}

/// Stacks `(C, H, W)` images into a single `(N, C, H, W)` batch tensor.
///
/// # Panics
///
/// Panics if the images do not all share the same shape or `images` is empty.
pub fn stack(images: &[&Tensor]) -> Tensor {
    assert!(!images.is_empty(), "cannot stack an empty list of images");
    let dims = images[0].dims().to_vec();
    let mut data = Vec::with_capacity(images.len() * images[0].len());
    for img in images {
        assert_eq!(img.dims(), dims.as_slice(), "all images must share a shape");
        data.extend_from_slice(img.data());
    }
    let mut out_dims = vec![images.len()];
    out_dims.extend_from_slice(&dims);
    Tensor::from_vec(out_dims, data).expect("stacked dimensions are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_set_and_bounds() {
        let mut c = Canvas::new(1, 4, 4);
        c.set(0, 1, 2, 0.5);
        c.set(0, -1, 0, 0.9); // silently ignored
        c.set(0, 10, 10, 0.9); // silently ignored
        let t = c.into_tensor();
        assert_eq!(t.get(&[0, 1, 2]), 0.5);
        assert_eq!(t.sum(), 0.5);
    }

    #[test]
    fn rectangle_and_circle_cover_expected_area() {
        let mut c = Canvas::new(1, 8, 8);
        c.fill_rect(0, 1, 1, 3, 2, 1.0);
        let t = c.clone().into_tensor();
        assert_eq!(t.sum(), 6.0);

        let mut c = Canvas::new(1, 9, 9);
        c.fill_circle(0, 4, 4, 2.0, 1.0);
        let t = c.into_tensor();
        assert!(t.sum() >= 9.0 && t.sum() <= 21.0);
        assert_eq!(t.get(&[0, 4, 4]), 1.0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = Canvas::new(1, 8, 8);
        c.line(0, 0.0, 0.0, 7.0, 7.0, 1.0);
        let t = c.into_tensor();
        assert_eq!(t.get(&[0, 0, 0]), 1.0);
        assert_eq!(t.get(&[0, 7, 7]), 1.0);
        assert!(t.sum() >= 8.0);
    }

    #[test]
    fn stack_builds_batches() {
        let a = Tensor::filled(vec![1, 2, 2], 1.0);
        let b = Tensor::filled(vec![1, 2, 2], 2.0);
        let batch = stack(&[&a, &b]);
        assert_eq!(batch.dims(), &[2, 1, 2, 2]);
        assert_eq!(batch.get(&[1, 0, 1, 1]), 2.0);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::zeros(vec![1, 2, 2]);
        let b = Tensor::zeros(vec![1, 3, 3]);
        stack(&[&a, &b]);
    }
}
