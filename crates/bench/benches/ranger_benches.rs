//! Criterion benchmarks complementing the experiment binaries.
//!
//! * `insertion/*` — wall-clock time of the Ranger transformation (Table III's
//!   instrumentation time).
//! * `inference/*` — forward-pass latency of the original vs. the protected model (the
//!   wall-clock complement of Table IV's FLOPs overhead).
//! * `profiling/bounds` — cost of deriving restriction bounds from profiling samples.
//! * `injection/trial` — throughput of a single fault-injection trial.

use criterion::{criterion_group, criterion_main, Criterion};
use ranger::bounds::{profile_bounds, ActivationBounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_inject::{
    CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget,
};
use ranger_models::archs;
use ranger_models::{Model, ModelConfig, ModelKind};
use ranger_tensor::Tensor;
use std::time::Duration;

fn model_input(model: &Model) -> Tensor {
    match model.config.kind.image_domain() {
        Some(domain) => {
            let (c, h, w) = domain.image_shape();
            Tensor::ones(vec![1, c, h, w])
        }
        None => {
            let (c, h, w) = ranger_datasets::driving::FRAME_SHAPE;
            Tensor::ones(vec![1, c, h, w])
        }
    }
}

fn bounds_for(model: &Model) -> ActivationBounds {
    let samples = vec![model_input(model)];
    profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )
    .expect("profiling succeeds")
}

fn protected(model: &Model) -> Model {
    let bounds = bounds_for(model);
    let (graph, _) = apply_ranger(&model.graph, &bounds, &RangerConfig::default()).expect("transform succeeds");
    let mut m = model.clone();
    m.graph = graph;
    m
}

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion");
    for kind in [ModelKind::LeNet, ModelKind::Vgg16, ModelKind::SqueezeNet, ModelKind::Dave] {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let bounds = bounds_for(&model);
        group.bench_function(kind.paper_name(), |b| {
            b.iter(|| apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    for kind in [ModelKind::LeNet, ModelKind::Comma] {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = model_input(&model);
        let with_ranger = protected(&model);
        group.bench_function(format!("{}/original", kind.paper_name()), |b| {
            b.iter(|| model.forward(&input).unwrap())
        });
        group.bench_function(format!("{}/ranger", kind.paper_name()), |b| {
            b.iter(|| with_ranger.forward(&input).unwrap())
        });
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let model = archs::build(&ModelConfig::lenet(), 0);
    let samples: Vec<Tensor> = (0..8).map(|_| model_input(&model)).collect();
    c.bench_function("profiling/bounds", |b| {
        b.iter(|| {
            profile_bounds(
                &model.graph,
                &model.input_name,
                &samples,
                &BoundsConfig::default(),
            )
            .unwrap()
        })
    });
}

fn bench_injection(c: &mut Criterion) {
    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let judge = ClassifierJudge::top1();
    c.bench_function("injection/trial", |b| {
        b.iter(|| {
            let config = CampaignConfig {
                trials: 1,
                fault: FaultModel::single_bit_fixed32(),
                seed: 3,
            };
            ranger_inject::run_campaign(&target, std::slice::from_ref(&input), &judge, &config).unwrap()
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_insertion, bench_inference, bench_profiling, bench_injection
}
criterion_main!(benches);
