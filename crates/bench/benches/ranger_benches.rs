//! Micro-benchmarks complementing the experiment binaries (std::time::Instant harness;
//! the build environment has no criterion).
//!
//! * `insertion/*` — wall-clock time of the Ranger transformation (Table III's
//!   instrumentation time).
//! * `inference/*` — forward-pass latency of the original vs. the protected model (the
//!   wall-clock complement of Table IV's FLOPs overhead).
//! * `exec_plan/*` — repeated forward passes through a fresh `Executor` per pass vs. a
//!   compiled `ExecPlan` with reused buffers: the hot-path speedup the campaign runner
//!   and `Pipeline` rely on.
//! * `profiling/bounds` — cost of deriving restriction bounds from profiling samples.
//! * `injection/trial` — throughput of a single fault-injection trial.
//! * `campaign_simd/*` — the identical campaign on the scalar f32 reference vs. the
//!   runtime-dispatched SIMD backend: bit-for-bit equal SDC counts (asserted), lower
//!   ns/trial on convolution-dominated models.
//!
//! Run with `cargo bench -p ranger-bench`. Set `RANGER_BENCH_FILTER` to a
//! comma-separated list of group names (e.g. `campaign_fixed,campaign_batched`) to run
//! only those groups. Pass `--json <path>` (after `--`, with an explicit
//! `--bench ranger_benches` so the flag does not reach the libtest harness) or set
//! `RANGER_BENCH_JSON` to additionally write every measurement as a per-group JSON
//! document — the machine-readable record CI and regression dashboards consume.

use ranger::bounds::{profile_bounds, ActivationBounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::Executor;
use ranger_inject::{
    BackendKind, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget, TILE_AUTO,
};
use ranger_models::archs;
use ranger_models::{Model, ModelConfig, ModelKind};
use ranger_tensor::Tensor;
use serde::Serialize;
use std::sync::Mutex;
use std::time::Instant;

/// One measurement, as recorded for the JSON report.
#[derive(Serialize)]
struct BenchRecord {
    name: String,
    ns_per_iter: f64,
    iters: usize,
    /// Amortized per-trial cost (`null` outside the campaign benches, whose iteration
    /// is a whole campaign rather than a single trial).
    ns_per_trial: Option<f64>,
}

/// Every measurement taken this run, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Times `f` over `iters` iterations after `warmup` warm-up calls; returns ns/iter.
///
/// Each iteration is timed on its own and the **minimum** is reported: every source of
/// interference (scheduler preemption, a neighbour process, a frequency dip) only ever
/// adds time, so the fastest observed iteration is the least-contaminated estimate of
/// the true cost. A mean over one timed block lets a single hiccup taint the whole
/// figure, which matters here because the campaign benches assert cross-config ratios.
fn bench<F: FnMut()>(name: &str, warmup: usize, iters: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    let ns = best;
    println!("{name:<40} {:>12.0} ns/iter   ({iters} iters)", ns);
    RECORDS.lock().unwrap().push(BenchRecord {
        name: name.to_string(),
        ns_per_iter: ns,
        iters,
        ns_per_trial: None,
    });
    ns
}

/// Attaches an amortized per-trial rate to the named measurement.
fn note_ns_per_trial(name: &str, ns_per_trial: f64) {
    let mut records = RECORDS.lock().unwrap();
    if let Some(record) = records.iter_mut().rev().find(|r| r.name == name) {
        record.ns_per_trial = Some(ns_per_trial);
    }
}

/// The JSON report path: `--json <path>` / `--json=<path>` on the command line wins,
/// then the `RANGER_BENCH_JSON` environment variable; `None` disables the report.
fn json_output_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => return Some(path.into()),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(path.into());
        }
    }
    std::env::var_os("RANGER_BENCH_JSON").map(Into::into)
}

/// Writes all recorded measurements to `path` as a JSON object keyed by benchmark
/// group (the name segment before the first `/`), each holding its measurements in
/// execution order.
fn write_json_report(path: &std::path::Path) {
    use std::collections::BTreeMap;
    let records = RECORDS.lock().unwrap();
    let mut groups: BTreeMap<&str, Vec<&BenchRecord>> = BTreeMap::new();
    for record in records.iter() {
        let group = record.name.split('/').next().unwrap_or(&record.name);
        groups.entry(group).or_default().push(record);
    }
    // Assembled by hand: the vendored serde has no BTreeMap impl, and the group order
    // should be deterministic either way.
    let mut body = String::from("{\n");
    for (gi, (group, members)) in groups.iter().enumerate() {
        let key = serde_json::to_string(group).expect("group name serializes");
        body.push_str(&format!("  {key}: [\n"));
        for (ri, record) in members.iter().enumerate() {
            let line = serde_json::to_string(*record).expect("bench record serializes");
            let comma = if ri + 1 < members.len() { "," } else { "" };
            body.push_str(&format!("    {line}{comma}\n"));
        }
        let comma = if gi + 1 < groups.len() { "," } else { "" };
        body.push_str(&format!("  ]{comma}\n"));
    }
    body.push_str("}\n");
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("could not write bench JSON to {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote bench JSON to {}", path.display());
}

fn model_input(model: &Model) -> Tensor {
    match model.config.kind.image_domain() {
        Some(domain) => {
            let (c, h, w) = domain.image_shape();
            Tensor::ones(vec![1, c, h, w])
        }
        None => {
            let (c, h, w) = ranger_datasets::driving::FRAME_SHAPE;
            Tensor::ones(vec![1, c, h, w])
        }
    }
}

fn bounds_for(model: &Model) -> ActivationBounds {
    let samples = vec![model_input(model)];
    profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )
    .expect("profiling succeeds")
}

fn protected(model: &Model) -> Model {
    let bounds = bounds_for(model);
    let (graph, _) =
        apply_ranger(&model.graph, &bounds, &RangerConfig::default()).expect("transform succeeds");
    let mut m = model.clone();
    m.graph = graph;
    m
}

fn bench_insertion() {
    for kind in [
        ModelKind::LeNet,
        ModelKind::Vgg16,
        ModelKind::SqueezeNet,
        ModelKind::Dave,
    ] {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let bounds = bounds_for(&model);
        bench(&format!("insertion/{}", kind.paper_name()), 2, 20, || {
            apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap();
        });
    }
}

fn bench_inference() {
    for kind in [ModelKind::LeNet, ModelKind::Comma] {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = model_input(&model);
        let with_ranger = protected(&model);
        bench(
            &format!("inference/{}/original", kind.paper_name()),
            2,
            30,
            || {
                model.forward(&input).unwrap();
            },
        );
        bench(
            &format!("inference/{}/ranger", kind.paper_name()),
            2,
            30,
            || {
                with_ranger.forward(&input).unwrap();
            },
        );
    }
}

/// The acceptance benchmark for the compiled execution plan: repeated forward passes of
/// the same graph through (a) a fresh `Executor` per pass — re-deriving the topological
/// order and re-allocating the value store every time — and (b) one compiled `ExecPlan`
/// with reused buffers. (b) must be measurably faster.
///
/// Two graphs are measured. On LeNet the convolution arithmetic dominates, so the
/// planning overhead is a small relative cost; on a deep narrow MLP (many cheap
/// operators, the shape of a production model pipelined across shards) the per-pass
/// planning work is a large fraction and the plan's advantage is unmistakable.
fn bench_exec_plan() {
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    // Deep, narrow MLP: 64 dense+relu blocks of width 8 → ~260 cheap operator nodes.
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let mut h = b.dense(x, 8, 8, &mut rng);
    for _ in 0..63 {
        h = b.relu(h);
        h = b.dense(h, 8, 8, &mut rng);
    }
    let deep = b.into_graph();
    let deep_out = h;
    let deep_input = Tensor::ones(vec![1, 8]);

    let executor_ns = bench("exec_plan/deep_mlp/executor_per_pass", 10, 500, || {
        let exec = Executor::new(&deep);
        exec.run_simple(&[("x", deep_input.clone())], deep_out)
            .unwrap();
    });
    let plan = deep.compile().unwrap();
    let mut values = plan.buffers();
    let plan_ns = bench("exec_plan/deep_mlp/compiled_plan", 10, 500, || {
        plan.run_into(
            &mut values,
            &[("x", deep_input.clone())],
            &mut NoopInterceptor,
        )
        .unwrap();
        values.get(deep_out).unwrap();
    });
    println!(
        "exec_plan/deep_mlp: compiled plan is {:.2}x the speed of per-pass planning",
        executor_ns / plan_ns
    );

    // The dispatch-tier-cache pin (PR 9): the SIMD backend on the deep narrow MLP is
    // the adversarial dispatch-bound shape — width-8 rows leave almost nothing to
    // vectorize, so every nanosecond separating this from the scalar plan is kernel
    // *entry* overhead. With the tier ladder resolved once into the process-wide
    // kernel table (one indirect call per kernel instead of a per-call tier match),
    // the ratio printed here should sit near 1.0x; the ~10% gap the ROADMAP recorded
    // for per-call dispatch is the regression this guards against.
    let simd_plan = deep.compile_with(&ranger_graph::SimdBackend).unwrap();
    let mut simd_values = simd_plan.buffers();
    let simd_ns = bench("exec_plan/deep_mlp/simd_plan", 10, 500, || {
        simd_plan
            .run_into(
                &mut simd_values,
                &[("x", deep_input.clone())],
                &mut NoopInterceptor,
            )
            .unwrap();
        simd_values.get(deep_out).unwrap();
    });
    println!(
        "exec_plan/deep_mlp: simd plan runs at {:.2}x the scalar plan \
         (dispatch-cache pin: near 1.0x, nothing to vectorize at width 8)",
        plan_ns / simd_ns
    );

    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    let output = model.output;
    let executor_ns = bench("exec_plan/lenet/executor_per_pass", 5, 200, || {
        let exec = Executor::new(&model.graph);
        exec.run_simple(&[(model.input_name.as_str(), input.clone())], output)
            .unwrap();
    });
    let plan = model.graph.compile().unwrap();
    let mut values = plan.buffers();
    let plan_ns = bench("exec_plan/lenet/compiled_plan", 5, 200, || {
        plan.run_into(
            &mut values,
            &[(model.input_name.as_str(), input.clone())],
            &mut NoopInterceptor,
        )
        .unwrap();
        values.get(output).unwrap();
    });
    println!(
        "exec_plan/lenet: compiled plan is {:.2}x the speed of per-pass planning",
        executor_ns / plan_ns
    );
}

fn bench_profiling() {
    let model = archs::build(&ModelConfig::lenet(), 0);
    let samples: Vec<Tensor> = (0..8).map(|_| model_input(&model)).collect();
    bench("profiling/bounds", 2, 20, || {
        profile_bounds(
            &model.graph,
            &model.input_name,
            &samples,
            &BoundsConfig::default(),
        )
        .unwrap();
    });
}

fn bench_injection() {
    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let judge = ClassifierJudge::top1();
    bench("injection/trial", 2, 50, || {
        let config = CampaignConfig {
            trials: 1,
            batch: 1,
            workers: 1,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed: 3,
            tile: 0,
        };
        ranger_inject::run_campaign(&target, std::slice::from_ref(&input), &judge, &config)
            .unwrap();
    });
}

/// The acceptance benchmark for batched campaigns: the same campaign (same seed, same
/// trials, bit-for-bit identical SDC counts — asserted in-loop at every grid point) run
/// per-sample (`batch = 1`), batched untiled, and batched with the row-group tiled
/// scheduler (`tile = auto` derives the row-group height from the warmed shapes and the
/// cache budget). Untiled batching amortizes fixed per-pass costs (graph walk, operator
/// dispatch, interceptor scan, constant materialization) but multiplies every
/// activation by `batch`, blowing the working set past cache on conv models; the tiled
/// schedule keeps the amortization while holding each segment's live rows cache-sized,
/// which is what makes batch 16/64 beat per-sample on LeNet (the PR-9 acceptance bar,
/// on both the f32 and simd backends, same-run).
///
/// Two models are measured: LeNet (convolution-dominated — the shape untiled batching
/// loses on) and a deep narrow MLP (dispatch-dominated — batching wins even untiled,
/// and tiling must not give the win back).
fn bench_campaign_batched() {
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    // 256 trials: enough passes that the flat per-campaign prepare cost (plan compile +
    // single-row warm, ~a quarter of a millisecond regardless of batch) stops dominating
    // the per-trial figure and the comparison measures the execution schedules.
    let trials = 256usize;
    let judge = ClassifierJudge::top1();

    let campaign = |label: &str,
                    graph: &ranger_graph::Graph,
                    input_name: &str,
                    output: ranger_graph::NodeId,
                    input: &Tensor| {
        let target = InjectionTarget {
            graph,
            input_name,
            output,
            excluded: &[],
        };
        for backend in [BackendKind::F32, BackendKind::Simd] {
            struct Entry {
                name: String,
                config: CampaignConfig,
                best_ns: f64,
                counts: Vec<u64>,
            }
            let mut entries: Vec<Entry> = [
                (1usize, 0usize),
                (16, 0),
                (16, 4),
                (16, TILE_AUTO),
                (64, 0),
                (64, 4),
                (64, TILE_AUTO),
            ]
            .iter()
            .map(|&(batch, tile)| {
                let tile_label = match tile {
                    0 => "untiled".to_string(),
                    TILE_AUTO => "tile_auto".to_string(),
                    n => format!("tile_{n}"),
                };
                Entry {
                    name: format!("campaign_batched/{label}/{backend}/batch_{batch}/{tile_label}"),
                    config: CampaignConfig {
                        trials,
                        batch,
                        workers: 1,
                        backend,
                        fault: FaultModel::single_bit_fixed32(),
                        seed: 5,
                        tile,
                    },
                    best_ns: f64::INFINITY,
                    counts: Vec::new(),
                }
            })
            .collect();
            // The grid points are compared against each other (the per-sample ratio is
            // the acceptance figure), so they are measured INTERLEAVED: each round runs
            // one campaign per config, round-robin, and every config keeps its own
            // per-round minimum. Sequential blocks would let slow machine drift
            // (frequency, a neighbour waking up) land entirely on whichever config was
            // measured at the wrong moment and fake a regression; interleaving spreads
            // the drift across all configs alike. Round 0 is the warm-up and is not
            // recorded.
            let iters = 20usize;
            for round in 0..=iters {
                for entry in &mut entries {
                    let start = Instant::now();
                    let result = ranger_inject::run_campaign(
                        &target,
                        std::slice::from_ref(input),
                        &judge,
                        &entry.config,
                    )
                    .unwrap();
                    let ns = start.elapsed().as_nanos() as f64;
                    if round > 0 {
                        entry.best_ns = entry.best_ns.min(ns);
                    }
                    entry.counts = result.sdc_counts;
                }
            }
            let reference_counts = entries[0].counts.clone();
            let per_sample_ns = entries[0].best_ns;
            for entry in &entries {
                assert_eq!(
                    &entry.counts, &reference_counts,
                    "batched/tiled campaign must reproduce the per-sample SDC counts \
                     ({})",
                    entry.name
                );
                println!(
                    "{:<40} {:>12.0} ns/iter   ({iters} iters, interleaved)",
                    entry.name, entry.best_ns
                );
                RECORDS.lock().unwrap().push(BenchRecord {
                    name: entry.name.clone(),
                    ns_per_iter: entry.best_ns,
                    iters,
                    ns_per_trial: Some(entry.best_ns / trials as f64),
                });
                println!(
                    "{}: {:>8.0} ns/trial ({:.2}x per-sample)",
                    entry.name,
                    entry.best_ns / trials as f64,
                    per_sample_ns / entry.best_ns
                );
            }
        }
    };

    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    campaign(
        "lenet",
        &model.graph,
        &model.input_name,
        model.output,
        &input,
    );

    // Deep, narrow MLP: 64 dense+relu blocks of width 8 — fixed per-pass costs dominate.
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let mut h = b.dense(x, 8, 8, &mut rng);
    for _ in 0..63 {
        h = b.relu(h);
        h = b.dense(h, 8, 8, &mut rng);
    }
    let probs = b.softmax(h);
    let deep = b.into_graph();
    campaign("deep_mlp", &deep, "x", probs, &Tensor::ones(vec![1, 8]));
}

/// The acceptance benchmark for parallel campaigns: the same campaign (same seed, same
/// trials, bit-for-bit identical SDC counts — asserted) run at 1, 2, 4 and 8 workers,
/// reporting per-trial wall-clock. Trials are independent forward passes, so on a
/// multi-core host per-trial time should shrink roughly with the worker count (≥ 2× at
/// 4 workers on the dispatch-bound deep MLP); on a single-core host the pool degrades
/// to roughly serial throughput.
fn bench_campaign_parallel() {
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    let trials = 64usize;
    let judge = ClassifierJudge::top1();

    let campaign = |label: &str,
                    graph: &ranger_graph::Graph,
                    input_name: &str,
                    output: ranger_graph::NodeId,
                    input: &Tensor| {
        let target = InjectionTarget {
            graph,
            input_name,
            output,
            excluded: &[],
        };
        let mut reference = None;
        let mut serial_ns = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let config = CampaignConfig {
                trials,
                batch: 1,
                workers,
                backend: BackendKind::F32,
                fault: FaultModel::single_bit_fixed32(),
                seed: 5,
                tile: 0,
            };
            let mut counts = Vec::new();
            let total_ns = bench(
                &format!("campaign_parallel/{label}/workers_{workers}"),
                1,
                10,
                || {
                    let result = ranger_inject::run_campaign(
                        &target,
                        std::slice::from_ref(input),
                        &judge,
                        &config,
                    )
                    .unwrap();
                    counts = result.sdc_counts.clone();
                },
            );
            match &reference {
                None => {
                    reference = Some(counts.clone());
                    serial_ns = total_ns;
                }
                Some(expected) => assert_eq!(
                    &counts, expected,
                    "parallel campaign must reproduce the serial SDC counts"
                ),
            }
            note_ns_per_trial(
                &format!("campaign_parallel/{label}/workers_{workers}"),
                total_ns / trials as f64,
            );
            println!(
                "campaign_parallel/{label}/workers_{workers}: {:>8.0} ns/trial ({:.2}x serial)",
                total_ns / trials as f64,
                serial_ns / total_ns
            );
        }
    };

    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    campaign(
        "lenet",
        &model.graph,
        &model.input_name,
        model.output,
        &input,
    );

    // Deep, narrow MLP: 64 dense+relu blocks of width 8 — many cheap passes, the shape
    // where per-pass dispatch dominates and parallel trials pay off most.
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let mut h = b.dense(x, 8, 8, &mut rng);
    for _ in 0..63 {
        h = b.relu(h);
        h = b.dense(h, 8, 8, &mut rng);
    }
    let probs = b.softmax(h);
    let deep = b.into_graph();
    campaign("deep_mlp", &deep, "x", probs, &Tensor::ones(vec![1, 8]));
}

/// The fixed-point backend benchmark: the same campaign (same seed, same index-keyed
/// fault plans) run on the f32 reference backend and on the genuine fixed16/fixed32
/// backends, per-sample and batched. Within each backend the batched counts must equal
/// the per-sample counts bit-for-bit (asserted); across backends the counts may differ —
/// that difference IS the measurement (fixed-point inference vs float inference with
/// fixed-point corruption).
fn bench_campaign_fixed() {
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    let trials = 32usize;
    let judge = ClassifierJudge::top1();

    let campaign = |label: &str,
                    graph: &ranger_graph::Graph,
                    input_name: &str,
                    output: ranger_graph::NodeId,
                    input: &Tensor| {
        let target = InjectionTarget {
            graph,
            input_name,
            output,
            excluded: &[],
        };
        for (backend, fault) in [
            (BackendKind::F32, FaultModel::single_bit_fixed16()),
            (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
            (BackendKind::Fixed32, FaultModel::single_bit_fixed32()),
        ] {
            let mut reference = None;
            for batch in [1usize, 16] {
                let config = CampaignConfig {
                    trials,
                    batch,
                    workers: 1,
                    backend,
                    fault,
                    seed: 5,
                    tile: 0,
                };
                let mut counts = Vec::new();
                let total_ns = bench(
                    &format!("campaign_fixed/{label}/{backend}/batch_{batch}"),
                    1,
                    10,
                    || {
                        let result = ranger_inject::run_campaign(
                            &target,
                            std::slice::from_ref(input),
                            &judge,
                            &config,
                        )
                        .unwrap();
                        counts = result.sdc_counts.clone();
                    },
                );
                match &reference {
                    None => reference = Some(counts.clone()),
                    Some(expected) => assert_eq!(
                        &counts, expected,
                        "batched fixed campaign must reproduce the per-sample counts"
                    ),
                }
                note_ns_per_trial(
                    &format!("campaign_fixed/{label}/{backend}/batch_{batch}"),
                    total_ns / trials as f64,
                );
                println!(
                    "campaign_fixed/{label}/{backend}/batch_{batch}: {:>8.0} ns/trial",
                    total_ns / trials as f64,
                );
            }
        }
    };

    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    campaign(
        "lenet",
        &model.graph,
        &model.input_name,
        model.output,
        &input,
    );

    // Deep, narrow MLP — the dispatch-bound shape, for the integer kernels' overhead.
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let mut h = b.dense(x, 8, 8, &mut rng);
    for _ in 0..63 {
        h = b.relu(h);
        h = b.dense(h, 8, 8, &mut rng);
    }
    let probs = b.softmax(h);
    let deep = b.into_graph();
    campaign("deep_mlp", &deep, "x", probs, &Tensor::ones(vec![1, 8]));
}

/// The acceptance benchmark for the SIMD backend: the identical campaign (same seed,
/// same trials, same fault model) run on the scalar f32 reference and on the
/// runtime-dispatched SIMD backend. The SDC counts must match bit for bit — the SIMD
/// kernels preserve the reference's accumulation order — and the SIMD run should be
/// measurably faster per trial on the convolution-dominated LeNet. The deep narrow MLP
/// is measured too as the adversarial shape: rows of width 8 leave little lane-level
/// parallelism, so it bounds the dispatch overhead rather than showing a win.
///
/// Uses the same trials/seed/batch grid as `campaign_batched`, so in a combined run
/// `campaign_simd/lenet/simd/batch_N` is directly comparable to
/// `campaign_batched/lenet/batch_N` (the same-run-ratio rule from docs/NUMERICS.md).
fn bench_campaign_simd() {
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    let trials = 64usize;
    let judge = ClassifierJudge::top1();

    let campaign = |label: &str,
                    graph: &ranger_graph::Graph,
                    input_name: &str,
                    output: ranger_graph::NodeId,
                    input: &Tensor| {
        let target = InjectionTarget {
            graph,
            input_name,
            output,
            excluded: &[],
        };
        let mut reference = None;
        let mut scalar_ns = 0.0;
        for backend in [BackendKind::F32, BackendKind::Simd] {
            for batch in [1usize, 16] {
                let config = CampaignConfig {
                    trials,
                    batch,
                    workers: 1,
                    backend,
                    fault: FaultModel::single_bit_fixed32(),
                    seed: 5,
                    tile: 0,
                };
                let mut counts = Vec::new();
                let total_ns = bench(
                    &format!("campaign_simd/{label}/{backend}/batch_{batch}"),
                    1,
                    10,
                    || {
                        let result = ranger_inject::run_campaign(
                            &target,
                            std::slice::from_ref(input),
                            &judge,
                            &config,
                        )
                        .unwrap();
                        counts = result.sdc_counts.clone();
                    },
                );
                match &reference {
                    None => {
                        reference = Some(counts.clone());
                        scalar_ns = total_ns;
                    }
                    Some(expected) => assert_eq!(
                        &counts, expected,
                        "the SIMD backend must reproduce the f32 SDC counts bit for bit"
                    ),
                }
                note_ns_per_trial(
                    &format!("campaign_simd/{label}/{backend}/batch_{batch}"),
                    total_ns / trials as f64,
                );
                println!(
                    "campaign_simd/{label}/{backend}/batch_{batch}: {:>8.0} ns/trial \
                     ({:.2}x f32 batch_1)",
                    total_ns / trials as f64,
                    scalar_ns / total_ns
                );
            }
        }
    };

    let model = archs::build(&ModelConfig::lenet(), 0);
    let input = model_input(&model);
    campaign(
        "lenet",
        &model.graph,
        &model.input_name,
        model.output,
        &input,
    );

    // Deep, narrow MLP — the dispatch-bound shape with width-8 rows: bounds the SIMD
    // backend's overhead where there is almost nothing to vectorize.
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let mut h = b.dense(x, 8, 8, &mut rng);
    for _ in 0..63 {
        h = b.relu(h);
        h = b.dense(h, 8, 8, &mut rng);
    }
    let probs = b.softmax(h);
    let deep = b.into_graph();
    campaign("deep_mlp", &deep, "x", probs, &Tensor::ones(vec![1, 8]));
}

fn main() {
    let json_path = json_output_path();
    let filter = std::env::var("RANGER_BENCH_FILTER").unwrap_or_default();
    let groups: [(&str, fn()); 9] = [
        ("insertion", bench_insertion),
        ("inference", bench_inference),
        ("exec_plan", bench_exec_plan),
        ("profiling", bench_profiling),
        ("injection", bench_injection),
        ("campaign_batched", bench_campaign_batched),
        ("campaign_parallel", bench_campaign_parallel),
        ("campaign_fixed", bench_campaign_fixed),
        ("campaign_simd", bench_campaign_simd),
    ];
    let mut ran = 0usize;
    for (name, run) in groups {
        if filter.is_empty() || filter.split(',').any(|f| f.trim() == name) {
            run();
            ran += 1;
        }
    }
    if ran == 0 {
        let known: Vec<&str> = groups.iter().map(|(name, _)| *name).collect();
        eprintln!(
            "RANGER_BENCH_FILTER='{filter}' matched no benchmark group; known groups: {}",
            known.join(", ")
        );
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        write_json_report(&path);
    }
}
