//! Command-line options shared by every experiment binary.

use ranger_inject::{BackendKind, CampaignConfig, FaultModel, TILE_AUTO};
use ranger_models::ModelKind;
use ranger_tensor::DataType;

/// Options controlling an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOptions {
    /// Fault-injection trials per input.
    pub trials: usize,
    /// Trials executed per batched forward pass (1 = the per-sample reference path;
    /// any value reproduces identical SDC counts).
    pub batch: usize,
    /// Worker threads executing campaign trials (1 = the serial path; any value
    /// reproduces identical SDC counts). Defaults to `RANGER_WORKERS` when set.
    pub workers: usize,
    /// Execution backend campaigns run on (f32 reference, genuine fixed16/fixed32
    /// inference, or the runtime-dispatched SIMD f32 path). Defaults to
    /// `RANGER_BACKEND` when set. Build campaign configurations
    /// through [`ExpOptions::campaign`] so a fixed backend realigns the experiment's
    /// fault datatype to its word format; fixed-point-specific binaries (fig9) manage
    /// the backend themselves.
    pub backend: BackendKind,
    /// Trials per row group on the tiled batched scheduler (0 = untiled,
    /// [`TILE_AUTO`] = derive from the warmed plan's cache footprint; any tile size
    /// reproduces identical SDC counts). Defaults to `RANGER_TILE` when set.
    pub tile: usize,
    /// Number of (correctly predicted) inputs per model.
    pub inputs: usize,
    /// Seed for model training, datasets and fault sampling.
    pub seed: u64,
    /// Run at a scale close to the paper's campaigns (10 inputs, thousands of trials).
    pub full: bool,
    /// Restrict the experiment to these models (empty = the experiment's default set).
    pub models: Vec<ModelKind>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            trials: 200,
            batch: 1,
            workers: ranger_runtime::default_workers(),
            backend: ranger_inject::default_backend(),
            tile: ranger_inject::default_tile(),
            inputs: 5,
            seed: 42,
            full: false,
            models: Vec::new(),
        }
    }
}

impl ExpOptions {
    /// Parses options from command-line arguments (`--trials N --batch N --workers N
    /// --backend f32|fixed16|fixed32|simd --tile N|auto --inputs N --seed N --full
    /// --models lenet,dave`). Unknown arguments are ignored so binaries can add their
    /// own flags.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit argument iterator.
    ///
    /// An unknown `--backend` value aborts the process with an error naming the known
    /// backends — silently running an experiment on the default backend would produce a
    /// result labelled with the wrong backend (the same fail-fast rule
    /// `RANGER_BENCH_FILTER` follows).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_parse(args) {
            Ok(opts) => opts,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        }
    }

    /// Parses options, reporting misuse as an `Err` instead of exiting.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        opts.trials = v;
                        i += 1;
                    }
                }
                "--batch" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        opts.batch = v;
                        i += 1;
                    }
                }
                "--workers" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        opts.workers = v;
                        i += 1;
                    }
                }
                "--backend" => {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| "--backend requires a value".to_string())?;
                    opts.backend = value.parse().map_err(|e| format!("--backend: {e}"))?;
                    i += 1;
                }
                "--tile" => {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| "--tile requires a value".to_string())?;
                    opts.tile = if value.eq_ignore_ascii_case("auto") {
                        TILE_AUTO
                    } else {
                        value.parse().map_err(|_| {
                            format!(
                                "--tile: invalid value '{value}' (expected a \
                                 trials-per-row-group count, 0 to disable, or 'auto')"
                            )
                        })?
                    };
                    i += 1;
                }
                "--inputs" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        opts.inputs = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--models" => {
                    if let Some(list) = args.get(i + 1) {
                        opts.models = list
                            .split(',')
                            .filter_map(|name| parse_model_kind(name.trim()))
                            .collect();
                        i += 1;
                    }
                }
                "--full" => {
                    opts.full = true;
                    opts.trials = 3000;
                    opts.inputs = 10;
                }
                _ => {}
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Builds the campaign configuration for this run: trials, batch, workers, backend
    /// and seed from the options, applying `fault` — with its datatype realigned to the
    /// backend's word format when a fixed-point backend is selected (the only pairing
    /// [`CampaignConfig::validate`] accepts; the flip count is preserved). This is what
    /// lets `--backend fixed16` (or `RANGER_BACKEND=fixed16`) rerun any experiment
    /// binary on genuine fixed-point inference, mirroring `Pipeline::backend`.
    pub fn campaign(&self, fault: FaultModel) -> CampaignConfig {
        let fault = match self.backend.spec() {
            Some(spec) => FaultModel {
                datatype: DataType::Fixed(spec),
                bits: fault.bits,
            },
            None => fault,
        };
        CampaignConfig {
            trials: self.trials,
            batch: self.batch,
            workers: self.workers,
            backend: self.backend,
            fault,
            seed: self.seed,
            tile: self.tile,
        }
    }

    /// The models to evaluate: the explicit `--models` list if given, otherwise `default`.
    pub fn models_or(&self, default: &[ModelKind]) -> Vec<ModelKind> {
        if self.models.is_empty() {
            default.to_vec()
        } else {
            self.models.clone()
        }
    }
}

/// Parses a model name as used on the command line.
pub fn parse_model_kind(name: &str) -> Option<ModelKind> {
    match name.to_ascii_lowercase().as_str() {
        "lenet" => Some(ModelKind::LeNet),
        "alexnet" => Some(ModelKind::AlexNet),
        "vgg11" => Some(ModelKind::Vgg11),
        "vgg16" => Some(ModelKind::Vgg16),
        "resnet18" | "resnet-18" | "resnet" => Some(ModelKind::ResNet18),
        "squeezenet" => Some(ModelKind::SqueezeNet),
        "dave" => Some(ModelKind::Dave),
        "comma" | "comma.ai" => Some(ModelKind::Comma),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpOptions {
        ExpOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_scaled_down() {
        let opts = ExpOptions::default();
        assert!(opts.trials < 3000 && opts.inputs < 10 && !opts.full);
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse(&[
            "--trials",
            "500",
            "--inputs",
            "3",
            "--seed",
            "9",
            "--batch",
            "16",
            "--workers",
            "4",
        ]);
        assert_eq!(opts.trials, 500);
        assert_eq!(opts.inputs, 3);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.batch, 16);
        assert_eq!(opts.workers, 4);
        assert_eq!(
            parse(&["--backend", "fixed16"]).backend,
            BackendKind::Fixed16
        );
        assert_eq!(parse(&["--backend", "simd"]).backend, BackendKind::Simd);
    }

    /// An unknown backend must not silently run the experiment on the default backend:
    /// the result would be labelled with a backend that never executed.
    #[test]
    fn unknown_backend_is_rejected_with_the_known_names() {
        let err = ExpOptions::try_parse(["--backend".to_string(), "warp".to_string()]).unwrap_err();
        assert!(err.contains("unknown backend"), "unexpected error: {err}");
        for name in ["f32", "fixed16", "fixed32", "simd"] {
            assert!(err.contains(name), "error does not list {name}: {err}");
        }
        let err = ExpOptions::try_parse(["--backend".to_string()]).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    /// `ExpOptions::campaign` must always hand the runner a valid configuration: on a
    /// fixed backend the experiment's fault datatype realigns to the backend's word
    /// format (keeping the flip count), on f32 it passes through untouched.
    #[test]
    fn campaign_builder_aligns_fault_with_backend() {
        use ranger_inject::FaultModel;
        let mut opts = parse(&["--trials", "9", "--seed", "4", "--backend", "fixed16"]);
        let config = opts.campaign(FaultModel::multi_bit_fixed32(3));
        assert_eq!(config.trials, 9);
        assert_eq!(config.seed, 4);
        assert_eq!(config.backend, BackendKind::Fixed16);
        assert_eq!(config.fault.bits, 3);
        assert!(config.validate().is_ok(), "realigned config must validate");

        opts.backend = BackendKind::F32;
        let passthrough = opts.campaign(FaultModel::single_bit_fixed16());
        assert_eq!(passthrough.fault, FaultModel::single_bit_fixed16());
        assert!(passthrough.validate().is_ok());
        assert_eq!(parse(&[]).batch, 1, "per-sample path is the default");
        assert!(parse(&[]).workers >= 1, "worker default is always usable");
    }

    /// `--tile` mirrors `--backend`'s fail-fast rule: a junk value must abort, never
    /// silently run the untiled scheduler under a tiled label.
    #[test]
    fn tile_flag_parses_counts_and_auto_and_rejects_junk() {
        assert_eq!(parse(&["--tile", "4"]).tile, 4);
        assert_eq!(parse(&["--tile", "0"]).tile, 0);
        assert_eq!(parse(&["--tile", "auto"]).tile, TILE_AUTO);
        assert_eq!(
            parse(&["--tile", "8"]).campaign(FaultModel::default()).tile,
            8
        );
        let err = ExpOptions::try_parse(["--tile".to_string(), "soon".to_string()]).unwrap_err();
        assert!(err.contains("--tile"), "unexpected error: {err}");
        let err = ExpOptions::try_parse(["--tile".to_string()]).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    #[test]
    fn full_matches_paper_scale() {
        let opts = parse(&["--full"]);
        assert_eq!(opts.trials, 3000);
        assert_eq!(opts.inputs, 10);
        assert!(opts.full);
    }

    #[test]
    fn model_list_parses_and_falls_back() {
        let opts = parse(&["--models", "lenet,dave,unknown"]);
        assert_eq!(opts.models, vec![ModelKind::LeNet, ModelKind::Dave]);
        assert_eq!(
            opts.models_or(&[ModelKind::Vgg16]),
            vec![ModelKind::LeNet, ModelKind::Dave]
        );
        let empty = parse(&[]);
        assert_eq!(empty.models_or(&[ModelKind::Vgg16]), vec![ModelKind::Vgg16]);
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let opts = parse(&["--percentile", "99", "--trials", "10"]);
        assert_eq!(opts.trials, 10);
    }

    #[test]
    fn model_names_parse_case_insensitively() {
        assert_eq!(parse_model_kind("ResNet-18"), Some(ModelKind::ResNet18));
        assert_eq!(parse_model_kind("COMMA"), Some(ModelKind::Comma));
        assert_eq!(parse_model_kind("nope"), None);
    }
}
