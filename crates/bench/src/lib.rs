//! Experiment harness shared by the per-figure/per-table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper (see the
//! repository's `ARCHITECTURE.md` for the full mapping). They all follow the same recipe:
//!
//! 1. load (or train) the benchmark model from the [`ModelZoo`](ranger_models::zoo::ModelZoo),
//! 2. derive restriction bounds from a sample of the training data and apply Ranger,
//! 3. run a fault-injection campaign on inputs the model predicts correctly,
//! 4. print the same rows/series the paper reports and write a JSON record under
//!    `target/experiments/`.
//!
//! The binaries accept `--trials N`, `--inputs N`, `--seed N` and `--full`; the defaults
//! are scaled down so the whole suite completes on a single CPU core in minutes, while
//! `--full` approaches the paper's campaign sizes (10 inputs, thousands of trials).

#![warn(missing_docs)]

pub mod harness;
pub mod options;

pub use harness::{
    correct_classifier_inputs, correct_steering_inputs, outputs_radians, print_table,
    profiling_samples, protect_model, protect_model_with, run_model_campaign, write_json,
    ProtectedModel, DEFAULT_PROFILE_FRACTION,
};
pub use options::ExpOptions;
pub use ranger_engine::{Pipeline, PipelineReport};
