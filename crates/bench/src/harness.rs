//! Shared experiment plumbing, now a thin layer over `ranger-engine`.
//!
//! The input-selection and protection helpers that used to be hand-wired here live in
//! [`ranger_engine`] so the bench binaries, the CLI and the [`Pipeline`](ranger_engine::Pipeline)
//! all pull inputs and protection the same way. This module re-exports them (keeping the
//! historical `ranger_bench::` paths working) and keeps the reporting conveniences
//! (`print_table`, `write_json`) that only the binaries need.

use ranger::bounds::BoundsConfig;
use ranger::protect::{Protector, RangerProtector};
use ranger::transform::RangerConfig;
use ranger_graph::GraphError;
use ranger_models::Model;
use std::path::PathBuf;

pub use ranger_engine::data::{
    correct_classifier_inputs, correct_steering_inputs, outputs_radians, profiling_samples,
};
pub use ranger_engine::pipeline::{run_model_campaign, ProtectedModel};
pub use ranger_engine::DEFAULT_PROFILE_FRACTION;

/// Profiles restriction bounds from `fraction` of the model's training data and applies
/// Ranger.
///
/// The profiling fraction is explicit (the paper's default is
/// [`DEFAULT_PROFILE_FRACTION`]); bound-sensitivity experiments pass their own grid values
/// instead of re-implementing sampling.
///
/// # Errors
///
/// Returns a [`GraphError`] if profiling or the transformation fails.
pub fn protect_model(
    model: &Model,
    seed: u64,
    fraction: f64,
    bounds_config: &BoundsConfig,
    ranger_config: &RangerConfig,
) -> Result<ProtectedModel, GraphError> {
    ranger_engine::protect_model(
        model,
        seed,
        fraction,
        bounds_config,
        &RangerProtector::new(*ranger_config),
    )
}

/// Profiles bounds and applies an arbitrary [`Protector`] (design alternatives, baseline
/// arms) — the trait-level twin of [`protect_model`].
///
/// # Errors
///
/// Returns a [`GraphError`] if profiling or the transformation fails.
pub fn protect_model_with(
    model: &Model,
    seed: u64,
    fraction: f64,
    bounds_config: &BoundsConfig,
    protector: &dyn Protector,
) -> Result<ProtectedModel, GraphError> {
    ranger_engine::protect_model(model, seed, fraction, bounds_config, protector)
}

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Writes an experiment record as JSON under `target/experiments/<name>.json` and returns
/// the path. Failures to write are reported but not fatal (experiments still print their
/// tables).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = std::env::var_os("RANGER_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
        });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            } else {
                println!("(wrote {})", path.display());
                Some(path)
            }
        }
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranger_models::archs;
    use ranger_models::{ModelConfig, ModelKind};

    #[test]
    fn profiling_samples_cover_twenty_percent() {
        let samples = profiling_samples(ModelKind::LeNet, 1, DEFAULT_PROFILE_FRACTION);
        let expected = (ranger_models::TrainConfig::for_kind(ModelKind::LeNet).train_samples as f64
            * 0.2)
            .ceil() as usize;
        assert_eq!(samples.len(), expected);
        assert_eq!(samples[0].dims()[0], 1);
        let driving = profiling_samples(ModelKind::Comma, 1, 0.05);
        assert!(!driving.is_empty());
    }

    #[test]
    fn protect_model_inserts_clamps_without_changing_metadata() {
        let model = archs::build(&ModelConfig::lenet(), 5);
        let protected = protect_model(
            &model,
            5,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )
        .unwrap();
        assert!(protected.stats.clamps_inserted > 0);
        assert_eq!(protected.model.input_name, model.input_name);
        assert_eq!(protected.model.output, model.output);
        assert!(protected.model.graph.clamp_count() > 0);
        assert_eq!(model.graph.clamp_count(), 0);
        assert!(!protected.bounds.is_empty());
    }

    #[test]
    fn explicit_fraction_changes_the_profiling_set() {
        let model = archs::build(&ModelConfig::lenet(), 5);
        // A tiny fraction profiles fewer samples but still derives usable bounds.
        let tiny = protect_model(
            &model,
            5,
            0.02,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )
        .unwrap();
        assert!(tiny.stats.clamps_inserted > 0);
    }

    #[test]
    fn trait_level_protection_supports_baseline_arms() {
        use ranger::protect::Unprotected;
        let model = archs::build(&ModelConfig::lenet(), 5);
        let arm = protect_model_with(
            &model,
            5,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &Unprotected,
        )
        .unwrap();
        assert_eq!(arm.stats.clamps_inserted, 0);
        assert_eq!(arm.model.graph, model.graph);
    }

    #[test]
    fn input_selection_returns_requested_count() {
        let model = archs::build(&ModelConfig::lenet(), 5);
        // An untrained model rarely predicts correctly; the fallback must still supply
        // the requested number of inputs.
        let inputs = correct_classifier_inputs(&model, 5, 3).unwrap();
        assert_eq!(inputs.len(), 3);
        let steering = archs::build(&ModelConfig::new(ModelKind::Comma), 5);
        let frames = correct_steering_inputs(&steering, 5, 2, 60.0).unwrap();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn radian_detection_matches_task() {
        let dave = archs::build(&ModelConfig::new(ModelKind::Dave), 0);
        let comma = archs::build(&ModelConfig::new(ModelKind::Comma), 0);
        assert!(outputs_radians(&dave));
        assert!(!outputs_radians(&comma));
    }
}
