//! Shared experiment plumbing: protection, input selection, campaigns and reporting.

use ranger::bounds::{profile_bounds, ActivationBounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig, RangerStats};
use ranger_graph::GraphError;
use ranger_inject::{run_campaign, CampaignConfig, CampaignResult, SdcJudge};
use ranger_inject::InjectionTarget;
use ranger_models::zoo::ModelZoo;
use ranger_models::{Model, ModelKind, Task};
use ranger_tensor::Tensor;
use std::path::PathBuf;

/// A model protected by Ranger, together with the bounds and transformation statistics.
#[derive(Debug, Clone)]
pub struct ProtectedModel {
    /// The protected model (same metadata as the original, rewritten graph).
    pub model: Model,
    /// The restriction bounds derived from the training data.
    pub bounds: ActivationBounds,
    /// Insertion statistics (clamp counts, instrumentation time).
    pub stats: RangerStats,
}

/// Returns profiling samples for bound derivation: a fraction (default 20%, as in the
/// paper) of the model's training set, each as a single-sample batch.
pub fn profiling_samples(kind: ModelKind, seed: u64, fraction: f64) -> Vec<Tensor> {
    let fraction = fraction.clamp(0.01, 1.0);
    if kind.is_steering() {
        let data = ModelZoo::driving_data(seed);
        let n = ((data.train.len() as f64) * fraction).ceil() as usize;
        (0..n.min(data.train.len()))
            .map(|i| data.train_batch(&[i], ranger_datasets::driving::AngleUnit::Degrees).0)
            .collect()
    } else {
        let data = ModelZoo::classification_data(kind, seed);
        let n = ((data.train.len() as f64) * fraction).ceil() as usize;
        (0..n.min(data.train.len()))
            .map(|i| data.train_batch(&[i]).0)
            .collect()
    }
}

/// Profiles restriction bounds from the model's training data and applies Ranger.
///
/// # Errors
///
/// Returns a [`GraphError`] if profiling or the transformation fails.
pub fn protect_model(
    model: &Model,
    seed: u64,
    bounds_config: &BoundsConfig,
    ranger_config: &RangerConfig,
) -> Result<ProtectedModel, GraphError> {
    let samples = profiling_samples(model.config.kind, seed, 0.2);
    let bounds = profile_bounds(&model.graph, &model.input_name, &samples, bounds_config)?;
    let (graph, stats) = apply_ranger(&model.graph, &bounds, ranger_config)?;
    let mut protected = model.clone();
    protected.graph = graph;
    Ok(ProtectedModel {
        model: protected,
        bounds,
        stats,
    })
}

/// Selects up to `n` validation images the classifier predicts correctly in the absence of
/// faults (the paper only injects into correctly-predicted inputs). Falls back to
/// arbitrary validation images if fewer than `n` are predicted correctly.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward pass fails.
pub fn correct_classifier_inputs(
    model: &Model,
    seed: u64,
    n: usize,
) -> Result<Vec<Tensor>, GraphError> {
    let data = ModelZoo::classification_data(model.config.kind, seed);
    let mut chosen = Vec::new();
    let mut fallback = Vec::new();
    for i in 0..data.validation.len() {
        if chosen.len() >= n {
            break;
        }
        let (batch, labels) = data.validation_batch(&[i]);
        let pred = model.predict_classes(&batch)?;
        if pred[0] == labels[0] {
            chosen.push(batch);
        } else if fallback.len() < n {
            fallback.push(batch);
        }
    }
    while chosen.len() < n && !fallback.is_empty() {
        chosen.push(fallback.remove(0));
    }
    Ok(chosen)
}

/// Selects up to `n` validation frames the steering model predicts within
/// `tolerance_degrees` of the ground truth, falling back to arbitrary frames.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward pass fails.
pub fn correct_steering_inputs(
    model: &Model,
    seed: u64,
    n: usize,
    tolerance_degrees: f32,
) -> Result<Vec<Tensor>, GraphError> {
    let data = ModelZoo::driving_data(seed);
    let mut chosen = Vec::new();
    let mut fallback = Vec::new();
    for i in 0..data.validation.len() {
        if chosen.len() >= n {
            break;
        }
        let (batch, target) =
            data.validation_batch(&[i], ranger_datasets::driving::AngleUnit::Degrees);
        let pred = model.predict_angles_degrees(&batch)?;
        if (pred[0] - target.data()[0]).abs() <= tolerance_degrees {
            chosen.push(batch);
        } else if fallback.len() < n {
            fallback.push(batch);
        }
    }
    while chosen.len() < n && !fallback.is_empty() {
        chosen.push(fallback.remove(0));
    }
    Ok(chosen)
}

/// Runs a fault-injection campaign against a model (protected or not).
///
/// # Errors
///
/// Returns a [`GraphError`] if any forward pass fails.
pub fn run_model_campaign(
    model: &Model,
    inputs: &[Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
) -> Result<CampaignResult, GraphError> {
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    run_campaign(&target, inputs, judge, config)
}

/// Returns `true` if the model predicts steering angles in radians (used to configure the
/// steering SDC judge).
pub fn outputs_radians(model: &Model) -> bool {
    matches!(
        model.task,
        Task::Regression {
            unit: ranger_datasets::driving::AngleUnit::Radians
        }
    )
}

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Writes an experiment record as JSON under `target/experiments/<name>.json` and returns
/// the path. Failures to write are reported but not fatal (experiments still print their
/// tables).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = std::env::var_os("RANGER_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
        });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            } else {
                println!("(wrote {})", path.display());
                Some(path)
            }
        }
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranger_models::archs;
    use ranger_models::ModelConfig;

    #[test]
    fn profiling_samples_cover_twenty_percent() {
        let samples = profiling_samples(ModelKind::LeNet, 1, 0.2);
        let expected = (ranger_models::TrainConfig::for_kind(ModelKind::LeNet).train_samples as f64 * 0.2).ceil() as usize;
        assert_eq!(samples.len(), expected);
        assert_eq!(samples[0].dims()[0], 1);
        let driving = profiling_samples(ModelKind::Comma, 1, 0.05);
        assert!(!driving.is_empty());
    }

    #[test]
    fn protect_model_inserts_clamps_without_changing_metadata() {
        let model = archs::build(&ModelConfig::lenet(), 5);
        let protected = protect_model(
            &model,
            5,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )
        .unwrap();
        assert!(protected.stats.clamps_inserted > 0);
        assert_eq!(protected.model.input_name, model.input_name);
        assert_eq!(protected.model.output, model.output);
        assert!(protected.model.graph.clamp_count() > 0);
        assert_eq!(model.graph.clamp_count(), 0);
        assert!(protected.bounds.len() > 0);
    }

    #[test]
    fn input_selection_returns_requested_count() {
        let model = archs::build(&ModelConfig::lenet(), 5);
        // An untrained model rarely predicts correctly; the fallback must still supply
        // the requested number of inputs.
        let inputs = correct_classifier_inputs(&model, 5, 3).unwrap();
        assert_eq!(inputs.len(), 3);
        let steering = archs::build(&ModelConfig::new(ModelKind::Comma), 5);
        let frames = correct_steering_inputs(&steering, 5, 2, 60.0).unwrap();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn radian_detection_matches_task() {
        let dave = archs::build(&ModelConfig::new(ModelKind::Dave), 0);
        let comma = archs::build(&ModelConfig::new(ModelKind::Comma), 0);
        assert!(outputs_radians(&dave));
        assert!(!outputs_radians(&comma));
    }
}
