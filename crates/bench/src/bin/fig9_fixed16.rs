//! Fig. 9 (RQ4): SDC rates of all eight DNNs under the 16-bit fixed-point datatype (14
//! integer bits, 2 fractional bits), with and without Ranger.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, correct_steering_inputs, outputs_radians, print_table,
    protect_model, run_model_campaign, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{CampaignConfig, ClassifierJudge, FaultModel, SdcJudge, SteeringJudge};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let config = CampaignConfig {
        trials: opts.trials,
        batch: opts.batch,
        workers: opts.workers,
        fault: FaultModel::single_bit_fixed16(),
        seed: opts.seed,
    };
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::all()) {
        eprintln!("[fig9] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let (inputs, judge): (Vec<_>, Box<dyn SdcJudge>) = if kind.is_steering() {
            (
                correct_steering_inputs(&trained.model, opts.seed, opts.inputs, 60.0)?,
                Box::new(SteeringJudge::paper_thresholds(outputs_radians(
                    &trained.model,
                ))),
            )
        } else {
            (
                correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?,
                Box::new(ClassifierJudge::top1()),
            )
        };
        let original = run_model_campaign(&trained.model, &inputs, judge.as_ref(), &config)?;
        let with_ranger = run_model_campaign(&protected.model, &inputs, judge.as_ref(), &config)?;
        // The paper's Fig. 9 reports the per-model average across categories.
        let avg = |r: &ranger_inject::CampaignResult| {
            (0..r.categories.len())
                .map(|i| r.sdc_rate(i).expect("category in range").rate_percent())
                .sum::<f64>()
                / r.categories.len().max(1) as f64
        };
        rows.push(Row {
            model: kind.paper_name().to_string(),
            original_sdc_percent: avg(&original),
            ranger_sdc_percent: avg(&with_ranger),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — SDC rates under the 16-bit fixed-point datatype",
        &["Model", "Original SDC", "Ranger SDC"],
        &table,
    );
    let avg_orig: f64 =
        rows.iter().map(|r| r.original_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    let avg_ranger: f64 =
        rows.iter().map(|r| r.ranger_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    println!("\nAverage SDC rate: {avg_orig:.2}% (original) -> {avg_ranger:.2}% (Ranger)");
    write_json("fig9_fixed16", &rows);
    Ok(())
}
