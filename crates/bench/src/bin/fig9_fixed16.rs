//! Fig. 9 (RQ4): SDC rates of all eight DNNs under the 16-bit fixed-point datatype (14
//! integer bits, 2 fractional bits), with and without Ranger.
//!
//! Two execution paths are reported side by side:
//!
//! * **emulated** — the historical path: inference computes in `f32` and only the
//!   corrupted value is encoded in Q14.2, flipped and decoded (float compute with
//!   fixed-point corruption);
//! * **fixed16** — the genuine RQ4 measurement: the whole campaign (golden passes
//!   included) runs on the fixed-point execution backend, activations are stored as raw
//!   Q14.2 words, and faults flip bits directly in those words.
//!
//! Both paths draw their fault plans from the same index-keyed RNG streams, so for a
//! given seed the same (operator, element, bit) sites are struck — only the compute
//! differs.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, correct_steering_inputs, outputs_radians, print_table,
    protect_model, run_model_campaign, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{
    BackendKind, CampaignConfig, CampaignResult, ClassifierJudge, FaultModel, SdcJudge,
    SteeringJudge,
};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    emulated_original_sdc_percent: f64,
    emulated_ranger_sdc_percent: f64,
    fixed_original_sdc_percent: f64,
    fixed_ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // This experiment is inherently about the 16-bit fixed-point datatype: the backend
    // pair is fixed here (emulated f32 vs genuine fixed16), not taken from --backend.
    let config = |backend| CampaignConfig {
        trials: opts.trials,
        batch: opts.batch,
        workers: opts.workers,
        backend,
        fault: FaultModel::single_bit_fixed16(),
        seed: opts.seed,
        tile: opts.tile,
    };
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::all()) {
        eprintln!("[fig9] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let (inputs, judge): (Vec<_>, Box<dyn SdcJudge>) = if kind.is_steering() {
            (
                correct_steering_inputs(&trained.model, opts.seed, opts.inputs, 60.0)?,
                Box::new(SteeringJudge::paper_thresholds(outputs_radians(
                    &trained.model,
                ))),
            )
        } else {
            (
                correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?,
                Box::new(ClassifierJudge::top1()),
            )
        };
        // The paper's Fig. 9 reports the per-model average across categories.
        let avg = |r: &CampaignResult| {
            (0..r.categories.len())
                .map(|i| r.sdc_rate(i).expect("category in range").rate_percent())
                .sum::<f64>()
                / r.categories.len().max(1) as f64
        };
        let mut arms = [0.0f64; 4];
        for (slot, (backend, model)) in arms.iter_mut().zip([
            (BackendKind::F32, &trained.model),
            (BackendKind::F32, &protected.model),
            (BackendKind::Fixed16, &trained.model),
            (BackendKind::Fixed16, &protected.model),
        ]) {
            *slot = avg(&run_model_campaign(
                model,
                &inputs,
                judge.as_ref(),
                &config(backend),
            )?);
        }
        rows.push(Row {
            model: kind.paper_name().to_string(),
            emulated_original_sdc_percent: arms[0],
            emulated_ranger_sdc_percent: arms[1],
            fixed_original_sdc_percent: arms[2],
            fixed_ranger_sdc_percent: arms[3],
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2}%", r.emulated_original_sdc_percent),
                format!("{:.2}%", r.emulated_ranger_sdc_percent),
                format!("{:.2}%", r.fixed_original_sdc_percent),
                format!("{:.2}%", r.fixed_ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — SDC rates under the 16-bit fixed-point datatype \
         (emulated = f32 compute with Q14.2 corruption; fixed16 = genuine Q14.2 inference)",
        &[
            "Model",
            "Emulated orig",
            "Emulated Ranger",
            "Fixed16 orig",
            "Fixed16 Ranger",
        ],
        &table,
    );
    let mean = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\nAverage SDC rate: emulated {:.2}% -> {:.2}% (Ranger) | fixed16 {:.2}% -> {:.2}% (Ranger)",
        mean(|r| r.emulated_original_sdc_percent),
        mean(|r| r.emulated_ranger_sdc_percent),
        mean(|r| r.fixed_original_sdc_percent),
        mean(|r| r.fixed_ranger_sdc_percent),
    );
    write_json("fig9_fixed16", &rows);
    Ok(())
}
