//! Fig. 6: SDC rates of the classifier models with and without Ranger (single bit flips,
//! 32-bit fixed-point datatype).

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, print_table, protect_model, run_model_campaign, write_json,
    ExpOptions,
};
use ranger_datasets::classification::ImageDomain;
use ranger_inject::{CampaignConfig, ClassifierJudge, FaultModel};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    category: String,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
    confidence95_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::classifiers()) {
        eprintln!("[fig6] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let inputs = correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?;
        let judge = if kind.image_domain() == Some(ImageDomain::NaturalScenes) {
            ClassifierJudge::top1_and_top5()
        } else {
            ClassifierJudge::top1()
        };
        let config = CampaignConfig {
            trials: opts.trials,
            fault: FaultModel::single_bit_fixed32(),
            seed: opts.seed,
        };
        let original = run_model_campaign(&trained.model, &inputs, &judge, &config)?;
        let with_ranger = run_model_campaign(&protected.model, &inputs, &judge, &config)?;
        for (i, category) in original.categories.iter().enumerate() {
            rows.push(Row {
                model: kind.paper_name().to_string(),
                category: category.clone(),
                original_sdc_percent: original.sdc_rate(i).rate_percent(),
                ranger_sdc_percent: with_ranger.sdc_rate(i).rate_percent(),
                confidence95_percent: original.sdc_rate(i).confidence95_percent(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.category.clone(),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
                format!("±{:.2}%", r.confidence95_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — SDC rates of classifier DNNs (original vs. Ranger)",
        &["Model", "Category", "Original SDC", "Ranger SDC", "95% CI"],
        &table,
    );
    let avg_orig: f64 = rows.iter().map(|r| r.original_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    let avg_ranger: f64 = rows.iter().map(|r| r.ranger_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    println!("\nAverage SDC rate: {avg_orig:.2}% (original) -> {avg_ranger:.2}% (Ranger)");
    write_json("fig6_classifier_sdc", &rows);
    Ok(())
}
