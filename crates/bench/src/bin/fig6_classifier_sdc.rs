//! Fig. 6: SDC rates of the classifier models with and without Ranger (single bit flips,
//! 32-bit fixed-point datatype).
//!
//! This binary runs entirely through the [`Pipeline`] API: one builder chain per model
//! replaces the hand-wired load → profile → protect → select-inputs → campaign sequence.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, write_json, ExpOptions, Pipeline};
use ranger_inject::FaultModel;
use ranger_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    category: String,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
    confidence95_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::classifiers()) {
        eprintln!("[fig6] preparing {kind} ...");
        let report = Pipeline::for_model(kind)
            .seed(opts.seed)
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .campaign(opts.campaign(FaultModel::single_bit_fixed32()))
            .inputs(opts.inputs)
            .run()?;
        let campaign = report.campaign.expect("campaign configured");
        for (base, prot) in campaign.baseline.iter().zip(&campaign.protected) {
            rows.push(Row {
                model: report.model.clone(),
                category: base.category.clone(),
                original_sdc_percent: base.sdc_percent,
                ranger_sdc_percent: prot.sdc_percent,
                confidence95_percent: base.ci95_percent,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.category.clone(),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
                format!("±{:.2}%", r.confidence95_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — SDC rates of classifier DNNs (original vs. Ranger)",
        &["Model", "Category", "Original SDC", "Ranger SDC", "95% CI"],
        &table,
    );
    let avg_orig: f64 =
        rows.iter().map(|r| r.original_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    let avg_ranger: f64 =
        rows.iter().map(|r| r.ranger_sdc_percent).sum::<f64>() / rows.len().max(1) as f64;
    println!("\nAverage SDC rate: {avg_orig:.2}% (original) -> {avg_ranger:.2}% (Ranger)");
    write_json("fig6_classifier_sdc", &rows);
    Ok(())
}
