//! Table VI: comparison of Ranger with existing protection techniques in terms of SDC
//! coverage and performance overhead. Ranger's and Hong et al.'s rows are measured by this
//! reproduction; the remaining rows reproduce the paper's cited numbers.

use ranger::baselines::{measured_entry, reported_techniques, TechniqueEntry};
use ranger::bounds::BoundsConfig;
use ranger::overhead::flops_overhead;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, print_table, protect_model, run_model_campaign, write_json,
    ExpOptions,
};
use ranger_inject::{CampaignConfig, ClassifierJudge, FaultModel};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use ranger_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // Measure Ranger and the Hong et al. baseline on a representative set of classifiers
    // (LeNet by default; pass --models to widen).
    let kinds = opts.models_or(&[ModelKind::LeNet, ModelKind::AlexNet]);
    let mut ranger_unprot = Vec::new();
    let mut ranger_prot = Vec::new();
    let mut hong_prot = Vec::new();
    let mut overheads = Vec::new();

    for kind in &kinds {
        eprintln!("[table6] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(*kind), opts.seed)?;
        let tanh = zoo.load_or_train(&ModelConfig::new(*kind).with_tanh(), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let inputs = correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?;
        let judge = ClassifierJudge::top1();
        let config = CampaignConfig {
            trials: opts.trials,
            fault: FaultModel::single_bit_fixed32(),
            seed: opts.seed,
        };
        ranger_unprot.push(run_model_campaign(&trained.model, &inputs, &judge, &config)?.sdc_rate(0).rate());
        ranger_prot.push(run_model_campaign(&protected.model, &inputs, &judge, &config)?.sdc_rate(0).rate());
        hong_prot.push(run_model_campaign(&tanh.model, &inputs, &judge, &config)?.sdc_rate(0).rate());

        let (c, h, w) = kind.image_domain().expect("classifier").image_shape();
        let input = Tensor::ones(vec![1, c, h, w]);
        overheads.push(
            flops_overhead(
                &trained.model.graph,
                &protected.model.graph,
                &trained.model.input_name,
                &input,
            )?
            .percent(),
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    let mut entries: Vec<TechniqueEntry> = reported_techniques();
    entries.push(measured_entry(
        "Hong et al. (Tanh swap, measured)",
        mean(&ranger_unprot),
        mean(&hong_prot),
        0.0,
    ));
    entries.push(measured_entry(
        "Ranger (measured)",
        mean(&ranger_unprot),
        mean(&ranger_prot),
        mean(&overheads),
    ));

    let table: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.name.to_string(),
                format!("{:.2}%", e.sdc_coverage_percent),
                format!("{:.2}%", e.overhead_percent),
                format!("{:?}", e.provenance),
            ]
        })
        .collect();
    print_table(
        "Table VI — SDC coverage vs. overhead of protection techniques",
        &["Technique", "SDC coverage", "Overhead", "Provenance"],
        &table,
    );
    write_json("table6_technique_comparison", &entries);
    Ok(())
}
