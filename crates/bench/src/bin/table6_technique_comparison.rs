//! Table VI: comparison of Ranger with existing protection techniques in terms of SDC
//! coverage and performance overhead. Ranger's and Hong et al.'s rows are measured by this
//! reproduction; the remaining rows reproduce the paper's cited numbers.
//!
//! The Ranger arm runs through the [`Pipeline`] API (its report carries the baseline and
//! protected rates plus the FLOPs overhead); the Hong et al. arm re-uses the same inputs
//! against the Tanh-retrained model via the engine's campaign helper.

use ranger::baselines::{measured_entry, reported_techniques, TechniqueEntry};
use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, write_json, ExpOptions, Pipeline};
use ranger_engine::{run_model_campaign, JudgeSpec};
use ranger_inject::{ClassifierJudge, FaultModel};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // Measure Ranger and the Hong et al. baseline on a representative set of classifiers
    // (LeNet and AlexNet by default; pass --models to widen).
    let kinds = opts.models_or(&[ModelKind::LeNet, ModelKind::AlexNet]);
    let mut ranger_unprot = Vec::new();
    let mut ranger_prot = Vec::new();
    let mut hong_prot = Vec::new();
    let mut overheads = Vec::new();

    let config = opts.campaign(FaultModel::single_bit_fixed32());
    for kind in &kinds {
        eprintln!("[table6] preparing {kind} ...");
        let outcome = Pipeline::for_model(*kind)
            .seed(opts.seed)
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .campaign(config)
            .inputs(opts.inputs)
            .judge(JudgeSpec::TopK(vec![1]))
            .run_full()?;
        let baseline = outcome.baseline_result.as_ref().expect("campaign ran");
        let shielded = outcome.protected_result.as_ref().expect("campaign ran");
        ranger_unprot.push(baseline.sdc_rate(0).expect("category in range").rate());
        ranger_prot.push(shielded.sdc_rate(0).expect("category in range").rate());
        overheads.push(outcome.report.overhead.flops_percent);

        // Hong et al.: swap ReLU for the saturating Tanh and retrain — judged on the
        // exact inputs the Ranger arm was injected into (selected from the original
        // model's correct predictions, as in the paper).
        let tanh = zoo.load_or_train(&ModelConfig::new(*kind).with_tanh(), opts.seed)?;
        let hong = run_model_campaign(
            &tanh.model,
            &outcome.campaign_inputs,
            &ClassifierJudge::top1(),
            &config,
        )?;
        hong_prot.push(hong.sdc_rate(0).expect("category in range").rate());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    let mut entries: Vec<TechniqueEntry> = reported_techniques();
    entries.push(measured_entry(
        "Hong et al. (Tanh swap, measured)",
        mean(&ranger_unprot),
        mean(&hong_prot),
        0.0,
    ));
    entries.push(measured_entry(
        "Ranger (measured)",
        mean(&ranger_unprot),
        mean(&ranger_prot),
        mean(&overheads),
    ));

    let table: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.name.to_string(),
                format!("{:.2}%", e.sdc_coverage_percent),
                format!("{:.2}%", e.overhead_percent),
                format!("{:?}", e.provenance),
            ]
        })
        .collect();
    print_table(
        "Table VI — SDC coverage vs. overhead of protection techniques",
        &["Technique", "SDC coverage", "Overhead", "Provenance"],
        &table,
    );
    write_json("table6_technique_comparison", &entries);
    Ok(())
}
