//! Section VI-C: design alternatives for the range-restriction operator — saturate at the
//! bound (Ranger), reset to zero (Reagen et al. style), or replace with a random in-range
//! value — compared on fault-free accuracy and on SDC rate under injection.

use ranger::alternatives::{all_policies, apply_design_alternative};
use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger_bench::{
    correct_classifier_inputs, print_table, profiling_samples, run_model_campaign, write_json,
    ExpOptions,
};
use ranger_inject::{ClassifierJudge, FaultModel};
use ranger_models::train::classification_accuracy;
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    top1_accuracy_percent: f64,
    sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // The paper uses VGG16; the default here is LeNet so the experiment completes quickly
    // (pass `--models vgg16` for the paper's setting).
    let kind = opts.models_or(&[ModelKind::LeNet])[0];
    eprintln!("[alternatives] preparing {kind} ...");
    let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
    let data = ModelZoo::classification_data(kind, opts.seed);
    let samples = profiling_samples(kind, opts.seed, 0.2);
    let bounds = profile_bounds(
        &trained.model.graph,
        &trained.model.input_name,
        &samples,
        &BoundsConfig::default(),
    )?;
    let inputs = correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?;
    let judge = ClassifierJudge::top1();
    let campaign = opts.campaign(FaultModel::single_bit_fixed32());

    let mut rows = Vec::new();
    let (top1, _) = classification_accuracy(&trained.model, &data, true)?;
    let unprotected = run_model_campaign(&trained.model, &inputs, &judge, &campaign)?;
    rows.push(Row {
        policy: "Unprotected".to_string(),
        top1_accuracy_percent: top1 * 100.0,
        sdc_percent: unprotected
            .sdc_rate(0)
            .expect("category in range")
            .rate_percent(),
    });

    for policy in all_policies() {
        let (graph, _) = apply_design_alternative(&trained.model.graph, &bounds, policy)?;
        let mut model = trained.model.clone();
        model.graph = graph;
        let (top1, _) = classification_accuracy(&model, &data, true)?;
        let result = run_model_campaign(&model, &inputs, &judge, &campaign)?;
        rows.push(Row {
            policy: format!("{policy:?}"),
            top1_accuracy_percent: top1 * 100.0,
            sdc_percent: result
                .sdc_rate(0)
                .expect("category in range")
                .rate_percent(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.2}%", r.top1_accuracy_percent),
                format!("{:.2}%", r.sdc_percent),
            ]
        })
        .collect();
    print_table(
        &format!("Section VI-C — design alternatives on {kind}"),
        &[
            "Out-of-bounds policy",
            "Top-1 accuracy (no faults)",
            "SDC rate",
        ],
        &table,
    );
    write_json("alt_design_alternatives", &rows);
    Ok(())
}
