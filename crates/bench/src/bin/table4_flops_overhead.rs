//! Table IV (RQ3): runtime overhead of Ranger measured in FLOPs (platform independent),
//! plus the memory overhead of storing the restriction bounds.

use ranger::bounds::BoundsConfig;
use ranger::overhead::{flops_overhead, memory_overhead_bytes};
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, protect_model, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION};
use ranger_datasets::driving::FRAME_SHAPE;
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use ranger_tensor::Tensor;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    baseline_flops: u64,
    protected_flops: u64,
    overhead_percent: f64,
    bounds_storage_bytes: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::all()) {
        eprintln!("[table4] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let input = match kind.image_domain() {
            Some(domain) => {
                let (c, h, w) = domain.image_shape();
                Tensor::ones(vec![1, c, h, w])
            }
            None => {
                let (c, h, w) = FRAME_SHAPE;
                Tensor::ones(vec![1, c, h, w])
            }
        };
        let report = flops_overhead(
            &trained.model.graph,
            &protected.model.graph,
            &trained.model.input_name,
            &input,
        )?;
        rows.push(Row {
            model: kind.paper_name().to_string(),
            baseline_flops: report.baseline_flops,
            protected_flops: report.protected_flops,
            overhead_percent: report.percent(),
            bounds_storage_bytes: memory_overhead_bytes(&protected.bounds),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.baseline_flops.to_string(),
                r.protected_flops.to_string(),
                format!("{:.3}%", r.overhead_percent),
                format!("{} B", r.bounds_storage_bytes),
            ]
        })
        .collect();
    print_table(
        "Table IV — FLOPs overhead of Ranger (plus bound-storage memory)",
        &[
            "Model",
            "w/o Ranger",
            "w/ Ranger",
            "Overhead",
            "Bounds memory",
        ],
        &table,
    );
    let avg: f64 = rows.iter().map(|r| r.overhead_percent).sum::<f64>() / rows.len().max(1) as f64;
    println!("\nAverage FLOPs overhead: {avg:.3}%");
    write_json("table4_flops_overhead", &rows);
    Ok(())
}
