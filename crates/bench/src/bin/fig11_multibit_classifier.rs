//! Fig. 11: SDC rates of the classifier models under multi-bit flips (2–5 independent bit
//! flips per inference), with and without Ranger. The paper evaluates LeNet and ResNet-18.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, print_table, protect_model, run_model_campaign, write_json,
    ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{CampaignConfig, ClassifierJudge, FaultModel};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    bits: usize,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let default_models = [ModelKind::LeNet, ModelKind::ResNet18];
    let mut rows = Vec::new();

    for kind in opts.models_or(&default_models) {
        eprintln!("[fig11] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let inputs = correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?;
        let judge = ClassifierJudge::top1();
        for bits in 2..=5 {
            let config = CampaignConfig {
                seed: opts.seed + bits as u64,
                ..opts.campaign(FaultModel::multi_bit_fixed32(bits))
            };
            let original = run_model_campaign(&trained.model, &inputs, &judge, &config)?;
            let with_ranger = run_model_campaign(&protected.model, &inputs, &judge, &config)?;
            rows.push(Row {
                model: kind.paper_name().to_string(),
                bits,
                original_sdc_percent: original
                    .sdc_rate(0)
                    .expect("category in range")
                    .rate_percent(),
                ranger_sdc_percent: with_ranger
                    .sdc_rate(0)
                    .expect("category in range")
                    .rate_percent(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{} bit", r.bits),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 11 — classifier SDC rates under multi-bit flips",
        &["Model", "Flips", "Original SDC", "Ranger SDC"],
        &table,
    );
    write_json("fig11_multibit_classifier", &rows);
    Ok(())
}
