//! Fig. 10: SDC rates of the degree-output Dave model protected with Ranger using
//! different restriction-bound percentiles (100%, 99.9%, 99%, 98%), per steering
//! threshold. Lower percentiles buy extra resilience at some accuracy cost (Table V).

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_steering_inputs, print_table, protect_model, run_model_campaign, write_json,
    ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_datasets::driving::AngleUnit;
use ranger_inject::{FaultModel, SteeringJudge};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bound: String,
    threshold_degrees: f64,
    sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // The paper's Section VI retrains Dave to output degrees for this study.
    let config_deg = ModelConfig::new(ModelKind::Dave).with_steering_unit(AngleUnit::Degrees);
    eprintln!("[fig10] preparing degree-output Dave ...");
    let trained = zoo.load_or_train(&config_deg, opts.seed)?;
    let inputs = correct_steering_inputs(&trained.model, opts.seed, opts.inputs, 60.0)?;
    let judge = SteeringJudge::paper_thresholds(false);
    let campaign = opts.campaign(FaultModel::single_bit_fixed32());

    let mut rows = Vec::new();
    // The unprotected baseline plus the four percentile bounds of the paper.
    let original = run_model_campaign(&trained.model, &inputs, &judge, &campaign)?;
    for (i, threshold) in judge.thresholds().iter().enumerate() {
        rows.push(Row {
            bound: "Original".to_string(),
            threshold_degrees: *threshold,
            sdc_percent: original
                .sdc_rate(i)
                .expect("category in range")
                .rate_percent(),
        });
    }
    for percentile in [100.0, 99.9, 99.0, 98.0] {
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::with_percentile(percentile),
            &RangerConfig::default(),
        )?;
        let result = run_model_campaign(&protected.model, &inputs, &judge, &campaign)?;
        for (i, threshold) in judge.thresholds().iter().enumerate() {
            rows.push(Row {
                bound: format!("Bound-{percentile}%"),
                threshold_degrees: *threshold,
                sdc_percent: result
                    .sdc_rate(i)
                    .expect("category in range")
                    .rate_percent(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bound.clone(),
                format!("{}", r.threshold_degrees),
                format!("{:.2}%", r.sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 10 — SDC rates of the degree-output Dave model per restriction-bound percentile",
        &["Bound", "Threshold (deg)", "SDC rate"],
        &table,
    );
    write_json("fig10_bound_tradeoff", &rows);
    Ok(())
}
