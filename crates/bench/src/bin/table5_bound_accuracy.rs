//! Table V: accuracy of the degree-output Dave model when protected with Ranger using
//! different restriction-bound percentiles (100%, 99.9%, 99%, 98%). Companion of Fig. 10.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, protect_model, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION};
use ranger_datasets::driving::AngleUnit;
use ranger_models::train::regression_metrics;
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bound: String,
    rmse_degrees: f64,
    avg_deviation_degrees: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let config_deg = ModelConfig::new(ModelKind::Dave).with_steering_unit(AngleUnit::Degrees);
    eprintln!("[table5] preparing degree-output Dave ...");
    let trained = zoo.load_or_train(&config_deg, opts.seed)?;
    let data = ModelZoo::driving_data(opts.seed);

    let mut rows = Vec::new();
    let (rmse, mad) = regression_metrics(&trained.model, &data, true)?;
    rows.push(Row {
        bound: "Original".to_string(),
        rmse_degrees: rmse,
        avg_deviation_degrees: mad,
    });
    for percentile in [100.0, 99.9, 99.0, 98.0] {
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::with_percentile(percentile),
            &RangerConfig::default(),
        )?;
        let (rmse, mad) = regression_metrics(&protected.model, &data, true)?;
        rows.push(Row {
            bound: format!("{percentile}% bound"),
            rmse_degrees: rmse,
            avg_deviation_degrees: mad,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bound.clone(),
                format!("{:.3}", r.rmse_degrees),
                format!("{:.3}", r.avg_deviation_degrees),
            ]
        })
        .collect();
    print_table(
        "Table V — accuracy of the degree-output Dave model per restriction-bound percentile",
        &["Bound", "RMSE (deg)", "Avg. deviation (deg)"],
        &table,
    );
    write_json("table5_bound_accuracy", &rows);
    Ok(())
}
