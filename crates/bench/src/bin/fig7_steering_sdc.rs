//! Fig. 7: SDC rates of the two steering models (Dave, Comma.ai) with and without Ranger,
//! for steering-deviation thresholds of 15°, 30°, 60° and 120°.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_steering_inputs, outputs_radians, print_table, protect_model, run_model_campaign,
    write_json, ExpOptions,
};
use ranger_inject::{CampaignConfig, FaultModel, SteeringJudge};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    threshold_degrees: f64,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::steering()) {
        eprintln!("[fig7] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let inputs = correct_steering_inputs(&trained.model, opts.seed, opts.inputs, 60.0)?;
        let judge = SteeringJudge::paper_thresholds(outputs_radians(&trained.model));
        let config = CampaignConfig {
            trials: opts.trials,
            fault: FaultModel::single_bit_fixed32(),
            seed: opts.seed,
        };
        let original = run_model_campaign(&trained.model, &inputs, &judge, &config)?;
        let with_ranger = run_model_campaign(&protected.model, &inputs, &judge, &config)?;
        for (i, threshold) in judge.thresholds().iter().enumerate() {
            rows.push(Row {
                model: kind.paper_name().to_string(),
                threshold_degrees: *threshold,
                original_sdc_percent: original.sdc_rate(i).rate_percent(),
                ranger_sdc_percent: with_ranger.sdc_rate(i).rate_percent(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}-{}", r.model, r.threshold_degrees),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — SDC rates of the steering models (original vs. Ranger)",
        &["Model-threshold", "Original SDC", "Ranger SDC"],
        &table,
    );
    write_json("fig7_steering_sdc", &rows);
    Ok(())
}
