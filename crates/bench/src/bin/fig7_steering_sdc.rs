//! Fig. 7: SDC rates of the two steering models (Dave, Comma.ai) with and without Ranger,
//! for steering-deviation thresholds of 15°, 30°, 60° and 120°.
//!
//! Runs through the [`Pipeline`] API; the steering judge (thresholds, radians handling)
//! is selected automatically from the model's task.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, write_json, ExpOptions, Pipeline};
use ranger_inject::FaultModel;
use ranger_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    threshold_degrees: f64,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let mut rows = Vec::new();

    let kinds = opts.models_or(&ModelKind::steering());
    // Fail fast before any training/campaign work: this figure only exists for the
    // steering models, and a late abort would discard completed campaigns.
    if let Some(kind) = kinds.iter().find(|k| !k.is_steering()) {
        return Err(format!("fig7 is a steering-model experiment; {kind} is a classifier").into());
    }

    for kind in kinds {
        eprintln!("[fig7] preparing {kind} ...");
        let report = Pipeline::for_model(kind)
            .seed(opts.seed)
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .campaign(opts.campaign(FaultModel::single_bit_fixed32()))
            .inputs(opts.inputs)
            .run()?;
        let campaign = report.campaign.expect("campaign configured");
        for (base, prot) in campaign.baseline.iter().zip(&campaign.protected) {
            let threshold_degrees = base
                .category
                .strip_prefix("threshold-")
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("unexpected steering category '{}'", base.category));
            rows.push(Row {
                model: report.model.clone(),
                threshold_degrees,
                original_sdc_percent: base.sdc_percent,
                ranger_sdc_percent: prot.sdc_percent,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}-{}", r.model, r.threshold_degrees),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — SDC rates of the steering models (original vs. Ranger)",
        &["Model-threshold", "Original SDC", "Ranger SDC"],
        &table,
    );
    write_json("fig7_steering_sdc", &rows);
    Ok(())
}
