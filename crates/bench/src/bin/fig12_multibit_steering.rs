//! Fig. 12: SDC rates of the AV steering models under multi-bit flips (2–5 independent bit
//! flips per inference), with and without Ranger.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_steering_inputs, outputs_radians, print_table, protect_model, run_model_campaign,
    write_json, ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{CampaignConfig, FaultModel, SteeringJudge};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    bits: usize,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::steering()) {
        eprintln!("[fig12] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        let inputs = correct_steering_inputs(&trained.model, opts.seed, opts.inputs, 60.0)?;
        let judge = SteeringJudge::paper_thresholds(outputs_radians(&trained.model));
        for bits in 2..=5 {
            let config = CampaignConfig {
                seed: opts.seed + bits as u64,
                ..opts.campaign(FaultModel::multi_bit_fixed32(bits))
            };
            let original = run_model_campaign(&trained.model, &inputs, &judge, &config)?;
            let with_ranger = run_model_campaign(&protected.model, &inputs, &judge, &config)?;
            // The paper's Fig. 12 reports the average across thresholds per bit count.
            let avg = |r: &ranger_inject::CampaignResult| {
                (0..r.categories.len())
                    .map(|i| r.sdc_rate(i).expect("category in range").rate_percent())
                    .sum::<f64>()
                    / r.categories.len().max(1) as f64
            };
            rows.push(Row {
                model: kind.paper_name().to_string(),
                bits,
                original_sdc_percent: avg(&original),
                ranger_sdc_percent: avg(&with_ranger),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{} bit", r.bits),
                format!("{:.2}%", r.original_sdc_percent),
                format!("{:.2}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 12 — AV steering-model SDC rates under multi-bit flips",
        &["Model", "Flips", "Original SDC", "Ranger SDC"],
        &table,
    );
    write_json("fig12_multibit_steering", &rows);
    Ok(())
}
