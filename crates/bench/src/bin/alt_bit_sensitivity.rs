//! Bit-position sensitivity study (Section III-B): the per-bit SDC rate with and without
//! Ranger, showing that critical faults cluster in the high-order bits and that range
//! restriction "transfers" them into the benign low-order region.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, print_table, protect_model, write_json, ExpOptions,
    DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{bit_sensitivity, ClassifierJudge, FaultModel, InjectionTarget};
use ranger_models::{Model, ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bit: u32,
    original_sdc_percent: f64,
    ranger_sdc_percent: f64,
}

fn sensitivity(
    model: &Model,
    input: &ranger_tensor::Tensor,
    trials: usize,
    seed: u64,
) -> Result<ranger_inject::BitSensitivity, Box<dyn std::error::Error>> {
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    Ok(bit_sensitivity(
        &target,
        input,
        &ClassifierJudge::top1(),
        FaultModel::single_bit_fixed32(),
        trials,
        seed,
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let kind = opts.models_or(&[ModelKind::LeNet])[0];
    eprintln!("[bit-sensitivity] preparing {kind} ...");
    let zoo = ModelZoo::with_default_dir();
    let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
    let protected = protect_model(
        &trained.model,
        opts.seed,
        DEFAULT_PROFILE_FRACTION,
        &BoundsConfig::default(),
        &RangerConfig::default(),
    )?;
    let input = correct_classifier_inputs(&trained.model, opts.seed, 1)?.remove(0);
    let trials = opts.trials.clamp(10, 500);

    let original = sensitivity(&trained.model, &input, trials, opts.seed)?;
    let with_ranger = sensitivity(&protected.model, &input, trials, opts.seed)?;

    let rows: Vec<Row> = original
        .per_bit
        .iter()
        .zip(&with_ranger.per_bit)
        .enumerate()
        .map(|(bit, (o, r))| Row {
            bit: bit as u32,
            original_sdc_percent: o.rate_percent(),
            ranger_sdc_percent: r.rate_percent(),
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bit.to_string(),
                format!("{:.1}%", r.original_sdc_percent),
                format!("{:.1}%", r.ranger_sdc_percent),
            ]
        })
        .collect();
    print_table(
        &format!("Per-bit SDC rate on {kind} (bit 0 = LSB, 32-bit fixed point)"),
        &["Bit", "Original SDC", "Ranger SDC"],
        &table,
    );
    println!(
        "\nmonotone clustering in high-order bits (original): {}",
        original.is_approximately_monotone(0.1)
    );
    write_json("alt_bit_sensitivity", &rows);
    Ok(())
}
