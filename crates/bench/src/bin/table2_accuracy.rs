//! Table II (RQ2): fault-free accuracy of every model with and without Ranger, evaluated
//! on the validation set. Range restriction must not degrade accuracy.
//!
//! Uses [`Pipeline::run_full`] (no campaign step) to obtain the trained and protected
//! models, then evaluates the paper's accuracy metrics on both.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, write_json, ExpOptions, Pipeline};
use ranger_models::train::{classification_accuracy, regression_metrics};
use ranger_models::{ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    metric: String,
    without_ranger: f64,
    with_ranger: f64,
    difference: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::all()) {
        eprintln!("[table2] preparing {kind} ...");
        let outcome = Pipeline::for_model(kind)
            .seed(opts.seed)
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .run_full()?;
        let (model, protected) = (&outcome.model, &outcome.protected.model);
        if kind.is_steering() {
            let data = ModelZoo::driving_data(opts.seed);
            let (rmse_orig, mad_orig) = regression_metrics(model, &data, true)?;
            let (rmse_prot, mad_prot) = regression_metrics(protected, &data, true)?;
            rows.push(Row {
                model: kind.paper_name().to_string(),
                metric: "RMSE (deg)".to_string(),
                without_ranger: rmse_orig,
                with_ranger: rmse_prot,
                difference: rmse_prot - rmse_orig,
            });
            rows.push(Row {
                model: kind.paper_name().to_string(),
                metric: "Avg. deviation (deg)".to_string(),
                without_ranger: mad_orig,
                with_ranger: mad_prot,
                difference: mad_prot - mad_orig,
            });
        } else {
            let data = ModelZoo::classification_data(kind, opts.seed);
            let (top1_orig, top5_orig) = classification_accuracy(model, &data, true)?;
            let (top1_prot, top5_prot) = classification_accuracy(protected, &data, true)?;
            rows.push(Row {
                model: kind.paper_name().to_string(),
                metric: "top-1 accuracy (%)".to_string(),
                without_ranger: top1_orig * 100.0,
                with_ranger: top1_prot * 100.0,
                difference: (top1_prot - top1_orig) * 100.0,
            });
            rows.push(Row {
                model: kind.paper_name().to_string(),
                metric: "top-5 accuracy (%)".to_string(),
                without_ranger: top5_orig * 100.0,
                with_ranger: top5_prot * 100.0,
                difference: (top5_prot - top5_orig) * 100.0,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.metric.clone(),
                format!("{:.3}", r.without_ranger),
                format!("{:.3}", r.with_ranger),
                format!("{:+.3}", r.difference),
            ]
        })
        .collect();
    print_table(
        "Table II — fault-free accuracy with and without Ranger",
        &["Model", "Metric", "w/o Ranger", "w/ Ranger", "Diff"],
        &table,
    );
    write_json("table2_accuracy", &rows);
    Ok(())
}
