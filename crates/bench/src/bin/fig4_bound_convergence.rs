//! Fig. 4: convergence of the per-activation restriction bounds with the amount of
//! profiling data (the paper shows the VGG16 model's 13 activation layers).

use ranger::bounds::profile_convergence;
use ranger_bench::options::parse_model_kind;
use ranger_bench::{print_table, profiling_samples, write_json, ExpOptions};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let kind = opts
        .models
        .first()
        .copied()
        .or_else(|| parse_model_kind("vgg16"))
        .unwrap_or(ModelKind::Vgg16);
    eprintln!("[fig4] preparing {kind} ...");
    let zoo = ModelZoo::with_default_dir();
    let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;

    // Use the full profiling pool (20% of the training set, as in the paper) and record
    // the normalised per-activation maxima at a handful of checkpoints.
    let samples = profiling_samples(kind, opts.seed, 0.2);
    let n = samples.len();
    let checkpoints: Vec<usize> = [n / 20, n / 10, n / 4, n / 2, n]
        .into_iter()
        .filter(|&c| c > 0)
        .collect();
    let points = profile_convergence(
        &trained.model.graph,
        &trained.model.input_name,
        &samples,
        &checkpoints,
    )?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mean: f64 =
                p.normalized_max.iter().sum::<f64>() / p.normalized_max.len().max(1) as f64;
            let min = p
                .normalized_max
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            vec![
                format!("{}", p.samples_used),
                format!("{:.4}", mean),
                format!("{:.4}", min),
                format!("{}", p.normalized_max.len()),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 4 — bound convergence on {kind} (normalised to the global maximum)"),
        &[
            "Samples used",
            "Mean normalised max",
            "Min normalised max",
            "ACT layers",
        ],
        &rows,
    );
    write_json("fig4_bound_convergence", &points);
    Ok(())
}
