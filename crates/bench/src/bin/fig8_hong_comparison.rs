//! Fig. 8: relative SDC reduction of Ranger compared with the defence of Hong et al.
//! (replacing the unbounded ReLU activation with the saturating Tanh and retraining), for
//! models built with either activation family.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, correct_steering_inputs, outputs_radians, print_table,
    protect_model, run_model_campaign, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{CampaignConfig, ClassifierJudge, FaultModel, SdcJudge, SteeringJudge};
use ranger_models::{Model, ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    /// The activation family the unprotected baseline uses ("relu" covers the original
    /// models, which for Comma.ai means ELU).
    base_activation: String,
    hong_relative_reduction_percent: f64,
    ranger_relative_reduction_percent: f64,
}

/// Average SDC rate over every category of a campaign (the paper reports the average over
/// thresholds for the steering models).
fn mean_sdc(
    model: &Model,
    inputs: &[ranger_tensor::Tensor],
    judge: &dyn SdcJudge,
    cfg: &CampaignConfig,
) -> Result<f64, Box<dyn std::error::Error>> {
    let result = run_model_campaign(model, inputs, judge, cfg)?;
    let rates: Vec<f64> = (0..result.categories.len())
        .map(|i| result.sdc_rate(i).expect("category in range").rate())
        .collect();
    Ok(rates.iter().sum::<f64>() / rates.len().max(1) as f64)
}

fn relative_reduction(original: f64, protected: f64) -> f64 {
    if original <= 0.0 {
        0.0
    } else {
        ((original - protected) / original * 100.0).clamp(0.0, 100.0)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    // The paper evaluates the five models that are cheap to retrain.
    let default_models = [
        ModelKind::LeNet,
        ModelKind::AlexNet,
        ModelKind::Vgg11,
        ModelKind::Dave,
        ModelKind::Comma,
    ];
    let config = opts.campaign(FaultModel::single_bit_fixed32());
    let mut rows = Vec::new();

    for kind in opts.models_or(&default_models) {
        eprintln!("[fig8] preparing {kind} (original and Tanh variants) ...");
        let relu = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let tanh = zoo.load_or_train(&ModelConfig::new(kind).with_tanh(), opts.seed)?;

        let inputs = if kind.is_steering() {
            correct_steering_inputs(&relu.model, opts.seed, opts.inputs, 60.0)?
        } else {
            correct_classifier_inputs(&relu.model, opts.seed, opts.inputs)?
        };
        let judge: Box<dyn SdcJudge> = if kind.is_steering() {
            Box::new(SteeringJudge::paper_thresholds(outputs_radians(
                &relu.model,
            )))
        } else {
            Box::new(ClassifierJudge::top1())
        };

        // Baselines and protections for both activation families.
        for (base_name, base) in [("Relu", &relu), ("Tanh", &tanh)] {
            let base_sdc = mean_sdc(&base.model, &inputs, judge.as_ref(), &config)?;
            // Hong et al.: swap the activation family for Tanh. Applied to a model that
            // already uses Tanh this changes nothing (0% relative reduction by
            // construction); applied to the ReLU model it is the Tanh variant.
            let hong_sdc = if base_name == "Relu" {
                mean_sdc(&tanh.model, &inputs, judge.as_ref(), &config)?
            } else {
                base_sdc
            };
            // Ranger: range restriction on the same base model.
            let ranger_model = protect_model(
                &base.model,
                opts.seed,
                DEFAULT_PROFILE_FRACTION,
                &BoundsConfig::default(),
                &RangerConfig::default(),
            )?;
            let ranger_sdc = mean_sdc(&ranger_model.model, &inputs, judge.as_ref(), &config)?;
            rows.push(Row {
                model: kind.paper_name().to_string(),
                base_activation: base_name.to_string(),
                hong_relative_reduction_percent: relative_reduction(base_sdc, hong_sdc),
                ranger_relative_reduction_percent: relative_reduction(base_sdc, ranger_sdc),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.base_activation.clone(),
                format!("{:.2}%", r.hong_relative_reduction_percent),
                format!("{:.2}%", r.ranger_relative_reduction_percent),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 — relative SDC reduction: Hong et al. vs. Ranger",
        &["Model", "Base activation", "Hong et al.", "Ranger"],
        &table,
    );
    write_json("fig8_hong_comparison", &rows);
    Ok(())
}
