//! Table III: one-time instrumentation cost — how long it takes to automatically insert
//! Ranger into each model, plus how many restriction operators are inserted.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{print_table, protect_model, write_json, ExpOptions, DEFAULT_PROFILE_FRACTION};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    graph_operators: usize,
    clamps_inserted: usize,
    insertion_milliseconds: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let mut rows = Vec::new();

    for kind in opts.models_or(&ModelKind::all()) {
        eprintln!("[table3] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let protected = protect_model(
            &trained.model,
            opts.seed,
            DEFAULT_PROFILE_FRACTION,
            &BoundsConfig::default(),
            &RangerConfig::default(),
        )?;
        rows.push(Row {
            model: kind.paper_name().to_string(),
            graph_operators: trained.model.graph.operator_nodes()?.len(),
            clamps_inserted: protected.stats.clamps_inserted,
            insertion_milliseconds: protected.stats.insertion_seconds * 1000.0,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.graph_operators.to_string(),
                r.clamps_inserted.to_string(),
                format!("{:.3} ms", r.insertion_milliseconds),
            ]
        })
        .collect();
    print_table(
        "Table III — time to automatically insert Ranger",
        &["Model", "Operators", "Clamps inserted", "Insertion time"],
        &table,
    );
    write_json("table3_insertion_time", &rows);
    Ok(())
}
