//! Ablation: protect only the ACT operations vs. the full Algorithm 1 (ACT operations plus
//! the pooling/reshape/concatenation operations that follow them).
//!
//! Section III-C of the paper argues, with the MaxPool/Conv example, that restricting the
//! ACT operations alone is not enough because faults striking the operations between
//! activations can still be amplified; this experiment quantifies the difference.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_bench::{
    correct_classifier_inputs, print_table, protect_model, run_model_campaign, write_json,
    ExpOptions, DEFAULT_PROFILE_FRACTION,
};
use ranger_inject::{ClassifierJudge, FaultModel};
use ranger_models::{ModelConfig, ModelKind, ModelZoo};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    configuration: String,
    sdc_percent: f64,
    clamps: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExpOptions::from_args();
    let zoo = ModelZoo::with_default_dir();
    let default_models = [ModelKind::LeNet, ModelKind::AlexNet];
    let judge = ClassifierJudge::top1();
    let campaign = opts.campaign(FaultModel::single_bit_fixed32());
    let mut rows = Vec::new();

    for kind in opts.models_or(&default_models) {
        eprintln!("[ablation] preparing {kind} ...");
        let trained = zoo.load_or_train(&ModelConfig::new(kind), opts.seed)?;
        let inputs = correct_classifier_inputs(&trained.model, opts.seed, opts.inputs)?;

        let unprotected = run_model_campaign(&trained.model, &inputs, &judge, &campaign)?;
        rows.push(Row {
            model: kind.paper_name().to_string(),
            configuration: "Unprotected".to_string(),
            sdc_percent: unprotected
                .sdc_rate(0)
                .expect("category in range")
                .rate_percent(),
            clamps: 0,
        });
        for (name, config) in [
            ("ACT only", RangerConfig::activations_only()),
            ("ACT + followers (Algorithm 1)", RangerConfig::default()),
        ] {
            let protected = protect_model(
                &trained.model,
                opts.seed,
                DEFAULT_PROFILE_FRACTION,
                &BoundsConfig::default(),
                &config,
            )?;
            let result = run_model_campaign(&protected.model, &inputs, &judge, &campaign)?;
            rows.push(Row {
                model: kind.paper_name().to_string(),
                configuration: name.to_string(),
                sdc_percent: result
                    .sdc_rate(0)
                    .expect("category in range")
                    .rate_percent(),
                clamps: protected.stats.clamps_inserted,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.configuration.clone(),
                format!("{:.2}%", r.sdc_percent),
                r.clamps.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — protecting ACT operations only vs. full Algorithm 1",
        &["Model", "Configuration", "SDC rate", "Clamps"],
        &table,
    );
    write_json("alt_ablation_followers", &rows);
    Ok(())
}
