//! Offline drop-in replacement for the subset of `proptest` this workspace uses.
//!
//! The vendored [`proptest!`] macro expands each property into an ordinary `#[test]`
//! function that draws its arguments from [`strategy::Strategy`] implementations for a
//! configurable number of cases. Sampling is deterministic: the RNG is seeded from the
//! property's name, so failures reproduce across runs. Unlike upstream proptest there is
//! no shrinking — a failing case panics with the case number so it can be replayed.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform, SeedableRng};

    /// Generates values of an output type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    /// Strategy producing vectors whose elements and length are drawn from inner
    /// strategies.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) length: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.length.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Returns the deterministic RNG for a named property (FNV-1a over the name).
    pub fn rng_for(name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::VecStrategy;

        /// A strategy for vectors with elements from `element` and length from `length`.
        pub fn vec<S>(element: S, length: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, length }
        }
    }
}

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to draw per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier graph/tensor properties fast
        // while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests; see the crate docs for the supported envelope.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $( $(#[$attr:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::strategy::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    let __run = || { $body };
                    if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest: property '{}' failed at case {}/{}",
                            stringify!($name), __case + 1, __config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(a in 3usize..9, b in -2.0f32..2.0, c in 0u32..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c <= 4);
        }

        #[test]
        fn vec_strategy_respects_length(values in prop::collection::vec(0.0f32..1.0, 1..16)) {
            prop_assert!(!values.is_empty() && values.len() < 16);
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_property_name() {
        let mut a = crate::strategy::rng_for("p");
        let mut b = crate::strategy::rng_for("p");
        let s = 0usize..1000;
        for _ in 0..10 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
