//! Derive macros for the vendored serde facade.
//!
//! Supports the shapes this workspace actually uses: structs with named fields, tuple
//! structs (newtype encoding for a single field, array encoding otherwise), unit structs,
//! and enums whose variants are unit, struct-like or tuple-like. Unit variants encode as
//! their name; data-carrying variants encode externally tagged, matching serde's default
//! representation. Generics and `#[serde(...)]` attributes are not supported — the parser
//! fails loudly on anything outside that envelope rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: {name}");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: skip the punct and the bracket group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "expected `:` after field {}, found {other:?}",
                names.last().expect("field")
            ),
        }
        // Skip the type: everything up to the next comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
    }
    names
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit enum discriminants are not supported by the vendored serde_derive");
        }
        variants.push(Variant { name, fields });
        // Skip to past the next top-level comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", entries.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let entries: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ match self {{ {} }} }} }}",
                arms.join(" ")
            )
        }
    }
}

fn field_from_payload(owner: &str, field: &str, payload: &str) -> String {
    format!(
        "{field}: serde::Deserialize::from_value({payload}.get_field(\"{field}\").unwrap_or(&serde::Value::Null)).map_err(|e| serde::Error::new(format!(\"{owner}.{field}: {{e}}\")))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| field_from_payload(name, f, "__value"))
                        .collect();
                    format!(
                        "if __value.as_object().is_none() {{ return Err(serde::Error::new(format!(\"expected object for struct {name}\"))); }} Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __value.as_array().ok_or_else(|| serde::Error::new(format!(\"expected array for struct {name}\")))?; if __items.len() != {n} {{ return Err(serde::Error::new(format!(\"expected {n} elements for struct {name}\"))); }} Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = __value; Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{ fn from_value(__value: &serde::Value) -> Result<Self, serde::Error> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_from_payload(&format!("{name}::{vn}"), f, "__payload"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __items = __payload.as_array().ok_or_else(|| serde::Error::new(format!(\"expected array payload for {name}::{vn}\")))?; if __items.len() != {n} {{ return Err(serde::Error::new(format!(\"expected {n} elements for {name}::{vn}\"))); }} Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{ fn from_value(__value: &serde::Value) -> Result<Self, serde::Error> {{ match __value {{ serde::Value::Str(__s) => match __s.as_str() {{ {unit} __other => Err(serde::Error::new(format!(\"unknown variant '{{__other}}' for {name}\"))), }}, serde::Value::Object(__fields) if __fields.len() == 1 => {{ let (__tag, __payload) = &__fields[0]; match __tag.as_str() {{ {data} __other => Err(serde::Error::new(format!(\"unknown variant '{{__other}}' for {name}\"))), }} }}, _ => Err(serde::Error::new(format!(\"expected string or single-entry object for enum {name}\"))), }} }} }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" ")
            )
        }
    }
}
