//! Offline drop-in replacement for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors the small
//! slice of `rand` it needs: a seedable deterministic generator ([`rngs::StdRng`], backed
//! by xoshiro256++), uniform range sampling ([`Rng::gen_range`]), the
//! [`distributions::Uniform`] distribution and [`seq::SliceRandom::shuffle`].
//!
//! The stream of values differs from upstream `rand` (this crate makes no attempt to match
//! upstream output bit-for-bit); everything in the workspace only relies on determinism
//! for a fixed seed, which this implementation guarantees.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from a "standard" distribution (unit interval for floats).
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of `Self`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive` is set.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from an empty range");
                (lo_w + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        let unit = f32::standard(rng);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        let unit = f64::standard(rng);
        lo + (hi - lo) * unit
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (same construction the xoshiro reference implementation recommends).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distributions over value ranges.

    use super::{RngCore, SampleUniform};

    /// Types that can be sampled from a distribution.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T: SampleUniform> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates a uniform distribution over `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.lo, self.hi, false, rng)
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: usize = StdRng::seed_from_u64(7).gen_range(0..1_000_000);
        assert_ne!(first, c.gen_range(0..1_000_000usize));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-1..=1i32);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(-2.0f32, 2.0);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn float_sampling_covers_the_interval_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..10_000).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!([1, 2, 3].choose(&mut StdRng::seed_from_u64(0)).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(0)).is_none());
    }
}
