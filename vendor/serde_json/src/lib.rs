//! Offline drop-in replacement for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], routed through the vendored
//! serde facade's `serde::Value` tree.
//!
//! The emitted JSON is standard; numbers print through Rust's shortest-round-trip
//! formatting so `f64` payloads survive a serialize/parse cycle exactly. Non-finite
//! floats serialize as `null` (the same choice upstream `serde_json` makes for them).

use serde::{Deserialize, Serialize, Value};

/// Errors produced by serialization or parsing.
pub type Error = serde::Error;

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] only if the value tree cannot be represented (never happens for
/// the workspace's types; the `Result` keeps the upstream signature).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] if the text is not valid JSON or does not match `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without a fractional part, like upstream serde_json
        // prints integers.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` on f64 is Rust's shortest representation that round-trips exactly.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number '{text}' at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let remaining = &self.bytes[self.pos..];
            let Some(&byte) = remaining.first() else {
                return Err(Error::new("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Surrogate pairs encode characters outside the BMP.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let text = std::str::from_utf8(remaining)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MAX, 1e-300, -0.0, 123456.789] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
        let small: f32 = 1.0e-7;
        let back: f32 = from_str(&to_string(&small).unwrap()).unwrap();
        assert_eq!(back, small);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0C}\u{1}é😀";
        let text = to_string(&tricky.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        let back: Vec<Vec<f64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5 junk").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
