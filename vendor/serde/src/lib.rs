//! Offline drop-in replacement for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a small
//! serde-compatible facade: the [`Serialize`]/[`Deserialize`] traits (routed through an
//! in-memory [`Value`] tree instead of upstream's visitor architecture), derive macros for
//! structs and enums (re-exported from the vendored `serde_derive` proc-macro crate), and
//! impls for the primitive, container and tuple types the workspace serializes.
//!
//! Representation choices mirror serde's defaults where they matter for readability:
//! structs become JSON objects, unit enum variants become strings, data-carrying variants
//! become externally tagged single-entry objects. Maps are encoded as arrays of
//! `[key, value]` pairs so non-string keys (e.g. node ids) round-trip without a
//! key-stringification layer.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, which JSON cannot represent).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number; `f64` is exact for every integer the workspace stores.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of named fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the fields of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    /// Returns the numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the serde data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the serde data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the value tree and the
    /// expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Err(Error::new(format!("expected {expected}, found {kind}")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as f64;
                if n.is_finite() { Value::Num(n) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Deserializing into a static string requires giving the data a static lifetime;
        // the workspace only does this for small reference-table entries, so the leak is
        // bounded and acceptable.
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_error("string", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => type_error("single-character string", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Entries are sorted by their serialized key so output is deterministic across
        // runs (HashMap iteration order is not).
        let mut entries: Vec<(String, Value, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k.to_value();
                (format!("{key:?}"), key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(
            entries
                .into_iter()
                .map(|(_, k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair.as_array() {
                    Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
                    _ => Err(Error::new("expected [key, value] pair in map encoding")),
                })
                .collect(),
            other => type_error("array of [key, value] pairs", other),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value.as_array() {
                    Some(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => type_error("fixed-length array", value),
                }
            }
        }
    )*};
}

impl_serde_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), opt);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let pair = (1usize, -2.0f32);
        assert_eq!(<(usize, f32)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn maps_round_trip_with_non_string_keys() {
        let mut m = HashMap::new();
        m.insert(3usize, (1.0f32, 2.0f32));
        m.insert(9usize, (-1.0, 0.5));
        let back = HashMap::<usize, (f32, f32)>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_serialization_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..50usize {
            m.insert(i, i as f64);
        }
        assert_eq!(m.to_value(), m.clone().to_value());
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Num(1.0)).is_err());
        let err = bool::from_value(&Value::Array(vec![])).unwrap_err();
        assert!(err.to_string().contains("bool"));
    }
}
