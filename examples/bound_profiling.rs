//! Explore Ranger's restriction-bound derivation (the paper's Fig. 4 and Section VI-A).
//!
//! ```text
//! cargo run --example bound_profiling
//! ```
//!
//! The example profiles a VGG11-style model's activation ranges with increasing amounts of
//! training data, showing how quickly the observed maxima converge to the global maxima,
//! and then compares the bounds obtained at different percentiles (the accuracy/resilience
//! trade-off of Section VI-A).

use ranger::bounds::{profile_bounds, profile_convergence, BoundsConfig};
use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
use ranger_models::{archs, ModelConfig, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = ClassificationDataset::generate(ImageDomain::TrafficSigns, 200, 0, 5);
    let model = archs::build(&ModelConfig::new(ModelKind::Vgg11), 5);
    let samples: Vec<_> = (0..100).map(|i| data.train_batch(&[i]).0).collect();

    // Fig. 4: convergence of the per-activation maxima with the amount of profiling data.
    println!("bound convergence (normalised to the maximum over all 100 samples):");
    let points = profile_convergence(
        &model.graph,
        &model.input_name,
        &samples,
        &[5, 10, 25, 50, 100],
    )?;
    for p in &points {
        let mean: f64 = p.normalized_max.iter().sum::<f64>() / p.normalized_max.len() as f64;
        let min = p
            .normalized_max
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {:>3} samples: mean {:.3}, minimum {:.3} across {} activation layers",
            p.samples_used,
            mean,
            min,
            p.normalized_max.len()
        );
    }

    // Section VI-A: tighter percentile bounds trade accuracy for resilience.
    println!("\nupper restriction bounds per percentile (first three ReLU layers):");
    for percentile in [100.0, 99.9, 99.0, 98.0] {
        let bounds = profile_bounds(
            &model.graph,
            &model.input_name,
            &samples,
            &BoundsConfig::with_percentile(percentile),
        )?;
        let mut uppers: Vec<(usize, f32)> = bounds
            .iter()
            .map(|(node, (_, hi))| (node.index(), hi))
            .collect();
        uppers.sort_by_key(|(idx, _)| *idx);
        let first_three: Vec<String> = uppers
            .iter()
            .take(3)
            .map(|(_, hi)| format!("{hi:.3}"))
            .collect();
        println!("  {percentile:>5}% bound: [{}]", first_three.join(", "));
    }
    println!("\nLower percentiles give tighter bounds: more faults are truncated (higher resilience)\nbut large legitimate activations may be clipped too (potential accuracy loss).");
    Ok(())
}
