//! Run a full fault-injection campaign (the paper's RQ1 methodology) on one model.
//!
//! ```text
//! cargo run --example fault_injection_campaign
//! ```
//!
//! The example runs the [`Pipeline`] API end to end: train a LeNet (quick recipe), derive
//! restriction bounds from 20% of the training data, measure the SDC rate under
//! single-bit-flip injection with and without Ranger, and print the resulting rates with
//! 95% confidence intervals — a miniature version of the paper's Fig. 6 for a single
//! model, in one builder chain.

use ranger::bounds::BoundsConfig;
use ranger::transform::RangerConfig;
use ranger_engine::Pipeline;
use ranger_inject::{CampaignConfig, FaultModel};
use ranger_models::{ModelKind, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 200;
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 300,
        validation_samples: 100,
    };

    println!("running the LeNet pipeline ({trials} trials per input) ...");
    let report = Pipeline::for_model(ModelKind::LeNet)
        .seed(21)
        .train(cfg)
        .profile(BoundsConfig::default())
        .protect(RangerConfig::default())
        .campaign(CampaignConfig {
            trials,
            batch: 1,
            workers: ranger_runtime::default_workers(),
            backend: ranger_inject::default_backend(),
            fault: FaultModel::single_bit_fixed32(),
            seed: 99,
            tile: ranger_inject::default_tile(),
        })
        .inputs(5)
        .run()?;

    println!(
        "validation accuracy: {:.1}%, {} clamps inserted, {:.2}% FLOPs overhead",
        report.validation_accuracy * 100.0,
        report.insertion.clamps_inserted,
        report.overhead.flops_percent
    );
    let campaign = report.campaign.expect("campaign configured");
    println!(
        "selected {} correctly-classified inputs, {trials} trials each",
        campaign.inputs
    );
    let orig = &campaign.baseline[0];
    let prot = &campaign.protected[0];
    println!(
        "\nSDC rate without Ranger: {:.2}% (±{:.2}%)",
        orig.sdc_percent, orig.ci95_percent
    );
    println!(
        "SDC rate with Ranger:    {:.2}% (±{:.2}%)",
        prot.sdc_percent, prot.ci95_percent
    );
    if prot.sdc_percent > 0.0 {
        println!(
            "reduction factor: {:.1}x (coverage {:.1}%)",
            orig.sdc_percent / prot.sdc_percent,
            campaign.coverage_percent[0]
        );
    } else {
        println!("Ranger eliminated every SDC observed in this campaign.");
    }
    Ok(())
}
