//! Run a full fault-injection campaign (the paper's RQ1 methodology) on one model.
//!
//! ```text
//! cargo run --example fault_injection_campaign
//! ```
//!
//! The example trains a LeNet, measures its SDC rate under single-bit-flip injection with
//! and without Ranger, and prints the resulting rates with 95% confidence intervals — a
//! miniature version of the paper's Fig. 6 for a single model.

use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
use ranger_inject::{run_campaign, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget};
use ranger_models::train::train_classifier;
use ranger_models::{archs, Model, ModelConfig, TrainConfig};

fn campaign(model: &Model, inputs: &[ranger_tensor::Tensor], trials: usize) -> Result<ranger_inject::CampaignResult, Box<dyn std::error::Error>> {
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let config = CampaignConfig {
        trials,
        fault: FaultModel::single_bit_fixed32(),
        seed: 99,
    };
    Ok(run_campaign(&target, inputs, &ClassifierJudge::top1(), &config)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 200;
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 300,
        validation_samples: 100,
    };
    let data = ClassificationDataset::generate(ImageDomain::Digits, cfg.train_samples, cfg.validation_samples, 21);
    let mut model = archs::build(&ModelConfig::lenet(), 21);
    println!("training LeNet ...");
    train_classifier(&mut model, &data, &cfg, 21)?;

    // Choose inputs the model classifies correctly in the absence of faults.
    let mut inputs = Vec::new();
    for i in 0..data.validation.len() {
        if inputs.len() >= 5 {
            break;
        }
        let (batch, labels) = data.validation_batch(&[i]);
        if model.predict_classes(&batch)?[0] == labels[0] {
            inputs.push(batch);
        }
    }
    println!("selected {} correctly-classified inputs, {trials} trials each", inputs.len());

    // Protect with Ranger.
    let samples: Vec<_> = (0..cfg.train_samples / 5).map(|i| data.train_batch(&[i]).0).collect();
    let bounds = profile_bounds(&model.graph, &model.input_name, &samples, &BoundsConfig::default())?;
    let (protected_graph, _) = apply_ranger(&model.graph, &bounds, &RangerConfig::default())?;
    let mut protected = model.clone();
    protected.graph = protected_graph;

    // Run both campaigns.
    println!("running the unprotected campaign ...");
    let original = campaign(&model, &inputs, trials)?;
    println!("running the Ranger-protected campaign ...");
    let with_ranger = campaign(&protected, &inputs, trials)?;

    let orig = original.sdc_rate(0);
    let prot = with_ranger.sdc_rate(0);
    println!("\nSDC rate without Ranger: {:.2}% (±{:.2}%)", orig.rate_percent(), orig.confidence95_percent());
    println!("SDC rate with Ranger:    {:.2}% (±{:.2}%)", prot.rate_percent(), prot.confidence95_percent());
    if prot.rate() > 0.0 {
        println!("reduction factor: {:.1}x", orig.rate() / prot.rate());
    } else {
        println!("Ranger eliminated every SDC observed in this campaign.");
    }
    Ok(())
}
