//! Quickstart: protect a DNN with Ranger and watch it correct an injected fault.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example trains a small LeNet on the synthetic digit dataset, derives restriction
//! bounds from 20% of the training data, applies Ranger (Algorithm 1 of the paper), and
//! then injects a single high-order bit flip into one convolution output — once in the
//! unprotected model and once in the protected one — showing that the protected model
//! still predicts the right digit.

use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::protect::{Protector, RangerProtector};
use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
use ranger_graph::Executor;
use ranger_inject::{FaultInjector, FaultModel, InjectionSpace, InjectionTarget};
use ranger_models::train::{classification_accuracy, train_classifier};
use ranger_models::{archs, ModelConfig, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small LeNet on the synthetic digit dataset.
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 300,
        validation_samples: 100,
    };
    let data = ClassificationDataset::generate(
        ImageDomain::Digits,
        cfg.train_samples,
        cfg.validation_samples,
        7,
    );
    let mut model = archs::build(&ModelConfig::lenet(), 7);
    println!(
        "training LeNet ({} parameters) ...",
        model.parameter_count()
    );
    train_classifier(&mut model, &data, &cfg, 7)?;
    let (top1, _) = classification_accuracy(&model, &data, true)?;
    println!("validation top-1 accuracy: {:.1}%", top1 * 100.0);

    // 2. Derive restriction bounds from 20% of the training data and apply Ranger — the
    //    protection step goes through the `Protector` trait, the same interface the
    //    design alternatives and baseline arms implement.
    let n_profile = cfg.train_samples / 5;
    let samples: Vec<_> = (0..n_profile).map(|i| data.train_batch(&[i]).0).collect();
    let bounds = profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )?;
    let (protected_graph, stats) = RangerProtector::default().protect(&model.graph, &bounds)?;
    let mut protected = model.clone();
    protected.graph = protected_graph;
    println!(
        "Ranger inserted {} range-restriction operators ({} on activations, {} on followers) in {:.2} ms",
        stats.clamps_inserted,
        stats.activations_protected,
        stats.followers_protected,
        stats.insertion_seconds * 1000.0
    );

    // 3. Inject a high-order bit flip into the first convolution's output.
    let (image, label) = data.validation_batch(&[0]);
    let golden_pred = model.predict_classes(&image)?[0];
    println!(
        "\nfault-free prediction: {golden_pred} (ground truth {})",
        label[0]
    );

    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let space = InjectionSpace::build(&target, &image)?;
    let fault = FaultModel::single_bit_fixed32();
    // Search for a critical fault: a high-order bit flip (bit 29) whose site actually
    // corrupts the unprotected model's prediction. Most random sites are benign — that is
    // the inherent resilience the paper builds on — so a few attempts may be needed.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let exec = Executor::new(&model.graph);
    let exec_p = Executor::new(&protected.graph);
    let mut found: Option<(usize, usize)> = None;
    for _ in 0..500 {
        let candidate = vec![ranger_inject::injector::PlannedFlip {
            site: space.sample(&mut rng),
            bit: 29,
        }];
        let mut injector = FaultInjector::with_plan(fault, candidate.clone());
        let faulty = exec.run_with(
            &[(model.input_name.as_str(), image.clone())],
            model.output,
            &mut injector,
        )?;
        let faulty_pred = faulty.argmax().unwrap_or(0);
        if faulty_pred == golden_pred {
            continue; // benign fault: tolerated even without Ranger
        }
        let mut injector_p = FaultInjector::with_plan(fault, candidate);
        let corrected = exec_p.run_with(
            &[(protected.input_name.as_str(), image.clone())],
            protected.output,
            &mut injector_p,
        )?;
        let corrected_pred = corrected.argmax().unwrap_or(0);
        found = Some((faulty_pred, corrected_pred));
        if corrected_pred == golden_pred {
            break; // a critical fault that Ranger corrects: the Fig. 1 scenario
        }
    }

    match found {
        Some((faulty_pred, corrected_pred)) => {
            println!("prediction with fault, unprotected model: {faulty_pred}");
            println!("prediction with fault, Ranger-protected model: {corrected_pred}");
            if corrected_pred == golden_pred {
                println!("\nRanger corrected the critical fault without re-computation.");
            } else {
                println!("\nThis particular fault escaped correction (Ranger reduces the SDC rate, it does not eliminate it).");
            }
        }
        None => println!(
            "\nEvery sampled fault was benign — the DNN's inherent resilience absorbed them all."
        ),
    }
    Ok(())
}
