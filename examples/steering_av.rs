//! The paper's Fig. 1 scenario: a transient fault corrupts the steering angle an AV DNN
//! predicts, and Ranger rectifies it without re-computation.
//!
//! ```text
//! cargo run --example steering_av
//! ```
//!
//! A Comma.ai-style steering model is trained on the synthetic driving dataset; a single
//! high-order bit flip is then injected into one of its convolution outputs. Without
//! Ranger the predicted steering angle swings wildly; with Ranger the prediction stays
//! close to the fault-free angle — the same qualitative behaviour as the paper's
//! 156.58° → −46.47° → 156.91° example.

use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_datasets::driving::{AngleUnit, DrivingDataset};
use ranger_graph::Executor;
use ranger_inject::injector::PlannedFlip;
use ranger_inject::{FaultInjector, FaultModel, InjectionSpace, InjectionTarget};
use ranger_models::train::{regression_metrics, train_regressor};
use ranger_models::{archs, ModelConfig, ModelKind, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the Comma.ai-style steering model.
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 0.02,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 400,
        validation_samples: 150,
    };
    let data = DrivingDataset::generate(cfg.train_samples, cfg.validation_samples, 11);
    let mut model = archs::build(&ModelConfig::new(ModelKind::Comma), 11);
    println!("training the Comma.ai steering model ...");
    train_regressor(&mut model, &data, &cfg, 11)?;
    let (rmse, mad) = regression_metrics(&model, &data, true)?;
    println!("validation RMSE: {rmse:.1}°, average deviation: {mad:.1}° per frame");

    // 2. Protect it with Ranger.
    let n_profile = cfg.train_samples / 5;
    let samples: Vec<_> = (0..n_profile)
        .map(|i| data.train_batch(&[i], AngleUnit::Degrees).0)
        .collect();
    let bounds = profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )?;
    let (protected_graph, stats) = apply_ranger(&model.graph, &bounds, &RangerConfig::default())?;
    let mut protected = model.clone();
    protected.graph = protected_graph;
    println!(
        "Ranger inserted {} range-restriction operators",
        stats.clamps_inserted
    );

    // 3. Drive one frame through both models with the same injected fault.
    let (frame, target) = data.validation_batch(&[3], AngleUnit::Degrees);
    let golden = model.predict_angles_degrees(&frame)?[0];
    println!("\nground-truth steering angle: {:.2}°", target.data()[0]);
    println!("prediction (without fault): {golden:.2}°");

    let injection_target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let space = InjectionSpace::build(&injection_target, &frame)?;
    let fault = FaultModel::single_bit_fixed32();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    // Try a few random sites with a high-order flip and report the one with the largest
    // unprotected deviation — the "critical fault" the paper's Fig. 1 illustrates.
    let mut worst: Option<(f32, f32, PlannedFlip)> = None;
    for _ in 0..20 {
        let plan = PlannedFlip {
            site: space.sample(&mut rng),
            bit: 29,
        };
        let exec = Executor::new(&model.graph);
        let mut injector = FaultInjector::with_plan(fault, vec![plan]);
        let faulty = exec.run_with(
            &[(model.input_name.as_str(), frame.clone())],
            model.output,
            &mut injector,
        )?;
        let angle = faulty.data()[0];
        let dev = (angle - golden).abs();
        if worst.as_ref().map(|(d, ..)| dev > *d).unwrap_or(true) {
            worst = Some((dev, angle, plan));
        }
    }
    let (_, faulty_angle, plan) = worst.expect("at least one trial ran");
    println!("prediction (with fault):    {faulty_angle:.2}°   <- unprotected model");

    let exec_p = Executor::new(&protected.graph);
    let mut injector = FaultInjector::with_plan(fault, vec![plan]);
    let corrected = exec_p.run_with(
        &[(protected.input_name.as_str(), frame)],
        protected.output,
        &mut injector,
    )?;
    println!(
        "prediction (with fault):    {:.2}°   <- model protected with Ranger",
        corrected.data()[0]
    );
    println!(
        "\nRanger reduced the steering deviation from {:.2}° to {:.2}°.",
        (faulty_angle - golden).abs(),
        (corrected.data()[0] - golden).abs()
    );
    Ok(())
}
